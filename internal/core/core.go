// Package core implements the parallel compiler: the three-level process
// hierarchy of the paper mapped onto Go's concurrency primitives.
//
//	master          (one)           parses the module's structure, forks
//	                                the section masters speculatively while
//	                                its own frontend races them, links each
//	                                section as it streams in, and cancels
//	                                the fleet on the first fatal error.
//	section masters (one/section)   plan dispatch units from the structural
//	                                outline (large functions first, small
//	                                ones batched), fork one dispatcher per
//	                                unit, then combine objects and
//	                                diagnostics as replies stream in.
//	function masters(one/function)  run phases 2+3 for one function on
//	                                some workstation of the backend.
//
// Processes on the same level never communicate, only parent and child do —
// exactly the paper's structure. Workstations are abstracted behind the
// Backend interface: internal/cluster provides an in-process pool
// (goroutines) and a distributed pool (net/rpc worker processes).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/asm"
	"repro/internal/ast"
	"repro/internal/compiler"
	"repro/internal/fcache"
	"repro/internal/iodriver"
	"repro/internal/link"
	"repro/internal/parser"
	"repro/internal/sched"
	"repro/internal/source"
)

// CompileRequest names one function of a module for a function master. The
// source travels with the request because the processes share no memory
// (the paper's masters likewise hand the source and parse information to
// their children) — except that SourceHash content-addresses it, so a
// backend whose workers already hold the source (internal/fcache) may clear
// Source and send the 32-byte hash alone.
type CompileRequest struct {
	File string
	// Source is the full module text. It may be empty when SourceHash is
	// set and the receiving worker is known to have the source resident.
	Source []byte
	// SourceHash is fcache.HashSource(Source). Zero means "not computed";
	// cached paths derive it on demand.
	SourceHash fcache.SourceHash
	Section    int // 1-based section index
	Index      int // 0-based function position within the section
	// FuncHash is the function's incremental content address (zero when the
	// dispatcher could not compute one). A worker holding the finished
	// artifact for it answers without running any phase — and without
	// needing Source at all.
	FuncHash fcache.FuncHash
	Opts     compiler.Options
}

// CompileReply is the function master's result: the assembled object plus
// the work statistics the section master aggregates.
type CompileReply struct {
	Name        string
	Section     int
	IsEntry     bool
	Lines       int
	ObjectBytes []byte
	CPUTime     time.Duration
	Warnings    []string
	// CacheHit reports that the worker answered from its object tier
	// without running phases 2+3 (an incremental hit).
	CacheHit bool
}

// BatchItem names one function inside a batch request by position.
type BatchItem struct {
	Section int // 1-based section index
	Index   int // 0-based function position within the section
	// FuncHash follows CompileRequest.FuncHash's rules.
	FuncHash fcache.FuncHash
}

// BatchRequest asks one worker to compile several functions of the same
// module in a single round trip, amortizing the per-request overhead that
// dominates small functions (the paper's headline negative result: up to
// 70% of elapsed time). Source/SourceHash follow CompileRequest's rules.
type BatchRequest struct {
	File       string
	Source     []byte
	SourceHash fcache.SourceHash
	Items      []BatchItem
	Opts       compiler.Options
}

// BatchBackend is implemented by backends that can run a multi-function
// dispatch unit in one request. Replies are returned aligned with
// req.Items: reply i answers item i. Cancelling ctx abandons the batch;
// partially completed work is discarded.
type BatchBackend interface {
	CompileBatch(ctx context.Context, req BatchRequest) ([]*CompileReply, error)
}

// Backend runs compile requests on some processor. Implementations must be
// safe for concurrent use; Compile blocks until a processor is free
// (first-come-first-served, as in the paper). Cancelling ctx severs the
// request — including any in-flight RPC — and returns ctx.Err() (possibly
// wrapped): the master uses this to stop the whole fleet the moment one
// section fails, instead of waiting out the barrier.
type Backend interface {
	Compile(ctx context.Context, req CompileRequest) (*CompileReply, error)
	// Workers returns the number of processors behind the backend.
	Workers() int
}

// CacheProvider is implemented by backends whose workers share an artifact
// cache with the master process (cluster.LocalPool). The master then warms
// the frontend tier during its own phase 1, so no worker ever re-parses.
type CacheProvider interface {
	Cache() *fcache.Cache
}

// CacheStatser is implemented by backends that can report cache
// effectiveness counters (cumulative over the backend's lifetime).
type CacheStatser interface {
	CacheStats() fcache.Stats
}

// FaultStats records a backend's fault-handling activity: how often the
// dispatch layer retried, failed over, quarantined or readmitted workers,
// hit call deadlines, or fell back to compiling in-process. Counters are
// cumulative over the backend's lifetime, like cache stats. A healthy
// cluster reports all zeros.
type FaultStats struct {
	// Retries counts requests re-dispatched after a transient failure.
	Retries int64
	// Failovers counts requests that ultimately succeeded after at least
	// one retry — the recovery the paper's system did not have.
	Failovers int64
	// Quarantines counts workers removed from rotation after consecutive
	// failures; Readmissions counts workers probed back into rotation.
	Quarantines  int64
	Readmissions int64
	// LocalFallbacks counts requests compiled in-process because no remote
	// worker was available.
	LocalFallbacks int64
	// DeadlineHits counts calls abandoned because they exceeded the
	// per-call deadline (hung or overloaded worker).
	DeadlineHits int64
	// BatchSplits counts multi-function batches that failed transiently and
	// were split in half for re-dispatch on other workers.
	BatchSplits int64
	// Warnings carries human-readable notes about degraded operation
	// (worker quarantined, compile fell back to local, degraded start).
	Warnings []string
}

// Any reports whether any fault-handling activity occurred.
func (s FaultStats) Any() bool {
	return s.Retries+s.Failovers+s.Quarantines+s.Readmissions+s.LocalFallbacks+s.DeadlineHits+s.BatchSplits > 0
}

// String renders the counters compactly.
func (s FaultStats) String() string {
	return fmt.Sprintf("retries=%d failovers=%d quarantines=%d readmissions=%d local-fallbacks=%d deadline-hits=%d batch-splits=%d",
		s.Retries, s.Failovers, s.Quarantines, s.Readmissions, s.LocalFallbacks, s.DeadlineHits, s.BatchSplits)
}

// Sub subtracts a baseline snapshot from s, scoping the cumulative counters
// to the interval since the baseline. Warnings are append-only on the
// backend, so the scoped warnings are the suffix past the baseline's length.
// With concurrent jobs sharing one backend the attribution is approximate:
// counters from overlapping jobs land in whichever interval observes them.
func (s *FaultStats) Sub(base FaultStats) {
	s.Retries -= base.Retries
	s.Failovers -= base.Failovers
	s.Quarantines -= base.Quarantines
	s.Readmissions -= base.Readmissions
	s.LocalFallbacks -= base.LocalFallbacks
	s.DeadlineHits -= base.DeadlineHits
	s.BatchSplits -= base.BatchSplits
	if n := len(base.Warnings); n <= len(s.Warnings) {
		s.Warnings = append([]string(nil), s.Warnings[n:]...)
	}
}

// FaultStatser is implemented by backends with a fault-tolerant dispatch
// layer (cluster.RPCPool).
type FaultStatser interface {
	FaultStats() FaultStats
}

// BackendStatsSnapshot captures a shared backend's cumulative cache and
// fault counters at one instant. A caller multiplexing many jobs onto one
// backend (the compile daemon) snapshots before each job and scopes the
// job's ParallelStats with ScopeToSnapshot afterwards, so per-job stats
// describe that job's interval instead of the backend's whole lifetime.
type BackendStatsSnapshot struct {
	Cache  fcache.Stats
	Faults FaultStats
}

// SnapshotBackendStats reads the backend's current cumulative counters
// (zero values for backends without the corresponding interface).
func SnapshotBackendStats(b Backend) BackendStatsSnapshot {
	var snap BackendStatsSnapshot
	if cs, ok := b.(CacheStatser); ok {
		snap.Cache = cs.CacheStats()
	}
	if fs, ok := b.(FaultStatser); ok {
		snap.Faults = fs.FaultStats()
	}
	return snap
}

// ScopeToSnapshot rebases the stats' cumulative backend counters (Cache,
// Faults) onto the given baseline, turning lifetime totals into this job's
// own activity.
func (s *ParallelStats) ScopeToSnapshot(base BackendStatsSnapshot) {
	s.Cache.Sub(base.Cache)
	s.Faults.Sub(base.Faults)
}

// RunFunctionMaster executes one compile request in the current process,
// re-deriving everything from source — the uncached behavior of the paper's
// function masters, which share only the file system.
func RunFunctionMaster(req CompileRequest) (*CompileReply, error) {
	return RunFunctionMasterWith(req, nil)
}

// ReplyFromEntry builds the function master's reply from a cached object
// entry. hit marks replies answered from cache without running any phase.
func ReplyFromEntry(e *fcache.ObjectEntry, cpu time.Duration, hit bool) *CompileReply {
	return &CompileReply{
		Name:        e.Name,
		Section:     e.Section,
		IsEntry:     e.IsEntry,
		Lines:       e.Lines,
		ObjectBytes: e.ObjectBytes,
		CPUTime:     cpu,
		Warnings:    e.Warnings,
		CacheHit:    hit,
	}
}

// RunFunctionMasterWith executes one compile request using cache for the
// shared immutable artifacts (checked frontend, per-function lowered IR,
// finished objects). With a nil cache it re-derives everything from source.
// Backends call it on their workers; cmd/warpworker exposes it over RPC with
// a per-process cache. A request whose FuncHash finds a finished artifact in
// the object tier is answered without touching the source — the incremental
// fast path.
func RunFunctionMasterWith(req CompileRequest, cache *fcache.Cache) (*CompileReply, error) {
	if e, ok := compiler.LookupObject(cache, req.FuncHash, req.Opts); ok {
		return ReplyFromEntry(e, 0, true), nil
	}
	start := time.Now()
	h := req.SourceHash
	if h.IsZero() && cache != nil {
		h = fcache.HashSource(req.Source)
	}
	fe := compiler.FrontendEntryCached(cache, h, req.File, req.Source)
	if fe.Bag.HasErrors() {
		return nil, fmt.Errorf("function master: front-end errors:\n%s", fe.Bag.String())
	}
	for _, sec := range fe.Module.Sections {
		if sec.Index != req.Section {
			continue
		}
		if req.Index < 0 || req.Index >= len(sec.Funcs) {
			return nil, fmt.Errorf("function master: section %d has no function %d", req.Section, req.Index)
		}
		fn := sec.Funcs[req.Index]
		entry, hit, err := compiler.CompileFunctionIncremental(cache, fe, fn, req.Opts)
		if err != nil {
			return nil, err
		}
		return ReplyFromEntry(entry, time.Since(start), hit), nil
	}
	return nil, fmt.Errorf("function master: no section %d in module", req.Section)
}

// RunBatchWith executes every item of a batch request in the current
// process, sequentially — one worker serving a whole dispatch unit. Replies
// align with req.Items. The frontend runs (or is fetched from cache) once
// for the whole batch, so even uncached workers amortize phase 1. A
// cancelled ctx stops between items; the item already running completes
// (phases 2+3 are not preemptible in-process).
func RunBatchWith(ctx context.Context, req BatchRequest, cache *fcache.Cache) ([]*CompileReply, error) {
	replies := make([]*CompileReply, len(req.Items))
	for i, it := range req.Items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := RunFunctionMasterWith(CompileRequest{
			File:       req.File,
			Source:     req.Source,
			SourceHash: req.SourceHash,
			Section:    it.Section,
			Index:      it.Index,
			FuncHash:   it.FuncHash,
			Opts:       req.Opts,
		}, cache)
		if err != nil {
			return nil, err
		}
		replies[i] = r
	}
	return replies, nil
}

// SectionFunc is one function's combined result inside a SectionResult,
// stored at its declaration index. Keeping the object, line count, and CPU
// time in one slot makes a request/reply skew a hard error instead of a
// silently zeroed field.
type SectionFunc struct {
	Name    string
	Object  *asm.Object
	Lines   int
	CPUTime time.Duration
	// Warnings are this function master's diagnostics, re-emitted by the
	// section master in declaration order.
	Warnings []string
}

// SectionResult is what one section master hands back to the master.
type SectionResult struct {
	Section int
	// Funcs holds one slot per declared function, in declaration order.
	Funcs []SectionFunc
	// CPUTime totals the function masters' compile times; MasterTime is the
	// section master's own coordination time; PlanTime the slice of it spent
	// computing the dispatch schedule.
	CPUTime    time.Duration
	MasterTime time.Duration
	PlanTime   time.Duration
	// Units counts dispatch units sent; Batches the multi-function units
	// among them; BatchedFuncs the functions that traveled inside batches.
	Units        int
	Batches      int
	BatchedFuncs int
	// Unchanged counts functions the section master short-circuited from the
	// local object tier before planning any dispatch; WorkerHits counts
	// dispatched functions a worker answered from its own object tier
	// without running phases 2+3.
	Unchanged  int
	WorkerHits int
	// Warnings are all function masters' warnings in declaration order.
	Warnings []string
	// Samples are the observed (shape → seconds) cost samples this section
	// collected from replies that genuinely ran phases 2+3 — cache hits
	// never ran and would teach the estimator that their shape is free.
	Samples []sched.CostSample
}

// SchedPolicy selects the dispatch-ordering strategy.
type SchedPolicy string

const (
	// SchedFCFS dispatches one request per function in declaration order —
	// the paper's measured system.
	SchedFCFS SchedPolicy = "fcfs"
	// SchedLPT orders dispatch by estimated cost, largest first, and packs
	// functions below the batch threshold into shared batches — the paper's
	// §4.3 improvement, productionized.
	SchedLPT SchedPolicy = "lpt"
)

// DefaultBatchThreshold is the estimated-cost cutoff below which functions
// are packed into shared batches. Calibrated against wgen's size classes:
// Small (~35 lines, cost ≈ 45) batches, a 300-line main (cost ≈ 500) never
// does.
const DefaultBatchThreshold = 100.0

// ParallelOptions selects the dispatch policy of a parallel compilation.
// The zero value means production defaults: LPT ordering with batching at
// DefaultBatchThreshold.
type ParallelOptions struct {
	// Sched is the ordering policy; empty means SchedLPT.
	Sched SchedPolicy
	// BatchThreshold is the estimated-cost cutoff for batching: 0 means
	// DefaultBatchThreshold, negative disables batching (one request per
	// function). Ignored under SchedFCFS, which never batches.
	BatchThreshold float64
	// Barrier selects the paper's strictly phased master: the full frontend
	// runs before any section master is forked, sections are linked only
	// after the last one finishes, and the I/O driver is generated in the
	// sequential tail. It exists as the measured baseline for the overlapped
	// pipeline (the default) and produces byte-identical output.
	Barrier bool
	// FrontendSequential selects the sequential frontend for the master's
	// phase-1 leg. The default is the span-sliced parallel frontend
	// (compiler.FrontendParallel), which produces word-identical artifacts;
	// the sequential path is kept as the oracle and the conservative choice.
	FrontendSequential bool
	// FrontendWorkers bounds the parallel frontend's fan-out; <1 means
	// GOMAXPROCS. Ignored under FrontendSequential.
	FrontendWorkers int
	// NoSteal disables the global work-stealing scheduler and reverts to the
	// static per-section dispatch (one goroutine per planned unit, FCFS
	// arbitration at the backend). It exists as the measured baseline for
	// stealing, the way Barrier is the baseline for the pipeline.
	NoSteal bool

	// fleet, when non-nil, is a daemon-lifetime shared stealing fleet this
	// build dispatches through instead of constructing its own; tenant is
	// the fair-share identity its units are tagged with (the same client
	// identity the daemon's Admitter queues by). Unexported on purpose:
	// the handle is set server-side via WithFleet and never crosses the
	// wire — gob skips unexported fields, so clients submit plain options
	// and dedup keys built from wire options stay fleet-free.
	fleet  *sched.Fleet
	tenant string
}

// WithFleet returns a copy of the options that dispatches through the given
// shared fleet under the given fair-share tenant identity. The daemon calls
// this after admission; standalone builds never do and keep their private
// per-build fleet.
func (o ParallelOptions) WithFleet(f *sched.Fleet, tenant string) ParallelOptions {
	o.fleet = f
	o.tenant = tenant
	return o
}

// normalized resolves the zero-value defaults.
func (o ParallelOptions) normalized() ParallelOptions {
	if o.Sched == "" {
		o.Sched = SchedLPT
	}
	if o.BatchThreshold == 0 {
		o.BatchThreshold = DefaultBatchThreshold
	}
	return o
}

// planThreshold maps the user-facing options onto sched.Plan's threshold
// convention (0 = FCFS singletons, <0 = LPT singletons, >0 = LPT+batch).
func (o ParallelOptions) planThreshold() float64 {
	o = o.normalized()
	if o.Sched == SchedFCFS {
		return 0
	}
	if o.BatchThreshold < 0 {
		return -1
	}
	return o.BatchThreshold
}

// DispatchStats summarizes the scheduling decisions of one compilation and
// how well the cost estimator predicted reality.
type DispatchStats struct {
	// Policy and BatchThreshold echo the effective options.
	Policy         SchedPolicy
	BatchThreshold float64
	// Units counts dispatch units sent across all sections; Batches the
	// multi-function units among them; BatchedFuncs the functions that
	// traveled inside batches.
	Units        int
	Batches      int
	BatchedFuncs int
	// RankCorr is the Spearman rank correlation between estimated cost and
	// measured CPU time per function (1 = the estimator orders perfectly,
	// 0 = uninformative). With fewer than 3 sampled functions the statistic
	// is meaningless noise and is reported as NaN (omitted from -stats).
	RankCorr float64
	// UnchangedFuncs counts functions short-circuited by section masters
	// from the shared object tier before scheduling; IncrementalHits counts
	// dispatched functions answered from a worker's object tier; only
	// RecompiledFuncs actually ran phases 2+3. RecompileRatio is
	// RecompiledFuncs over the module's function count — after a one-function
	// edit of a warm module it approaches 1/N.
	UnchangedFuncs  int
	IncrementalHits int
	RecompiledFuncs int
	RecompileRatio  float64
}

// StealStats reports the global work-stealing scheduler's activity during
// one compilation, plus how the self-tuning cost model performed against the
// static formula. All zero (Enabled=false) under ParallelOptions.NoSteal.
type StealStats struct {
	// Enabled reports that the work-stealing fleet dispatched this build.
	// Shared reports that the fleet was a daemon-lifetime one multiplexing
	// concurrent builds (false for the standalone per-build fleet).
	Enabled bool
	Shared  bool
	// Steals counts steal operations that took this build's queued work (an
	// idle slot raiding another slot's deque); CrossBuildSteals the subset
	// where the thieving slot's previous unit belonged to a different build
	// — only possible on a shared fleet; BatchSplits the subset that
	// cracked a queued multi-function batch open mid-flight because the
	// victim had nothing else to give.
	Steals           int
	CrossBuildSteals int
	BatchSplits      int
	// StealLatency totals the time thieving slots spent between running dry
	// and acquiring this build's stolen work.
	StealLatency time.Duration
	// IdleTime decomposes starvation per dispatch slot: total time each
	// slot spent parked with no work anywhere — the straggler overhead the
	// stealer exists to shrink. On a shared fleet this is the fleet-wide
	// idle accrued during this job's window (approximate under overlap,
	// the way FaultStats deltas are).
	IdleTime []time.Duration
	// ModelFitted reports that the cost model was fitted from persisted
	// samples (false on a cold cache or when the fit failed its guards);
	// SampleCount is the size of the persisted window the fit ran over.
	ModelFitted bool
	SampleCount int
	// FittedRankCorr and StaticRankCorr are the Spearman rank correlations
	// of the fitted and static cost models against this build's measured
	// per-function CPU times (NaN below 3 measured functions, omitted from
	// -stats). The fit guard keeps FittedRankCorr ≥ StaticRankCorr on the
	// recorded sample window.
	FittedRankCorr float64
	StaticRankCorr float64
}

// idleDelta subtracts a per-slot idle snapshot taken at build open from one
// taken at build close, scoping a shared fleet's lifetime idle accounting
// to this job's window. On a private fleet base is effectively zero.
func idleDelta(now, base []time.Duration) []time.Duration {
	out := make([]time.Duration, len(now))
	for i := range now {
		out[i] = now[i]
		if i < len(base) {
			out[i] -= base[i]
		}
	}
	return out
}

// PipelineStats records how much of the master's sequential head and tail
// the overlapped pipeline hid inside the parallel region. The overlap fields
// are zero under ParallelOptions.Barrier; the frontend fields are filled
// whenever the parallel frontend actually ran (not on a frontend cache hit).
type PipelineStats struct {
	// FrontendParseWall and FrontendCheckWall split the master's frontend leg
	// into its span-sliced parse and concurrent check; FrontendWorkers is the
	// fan-out bound the parallel frontend resolved. All zero when the
	// sequential frontend ran or the frontend tier answered from cache.
	FrontendParseWall time.Duration
	FrontendCheckWall time.Duration
	FrontendWorkers   int
	// FrontendOverlap is how much of the master's frontend ran concurrently
	// with section compilation (min of FrontendTime and CompileWallTime):
	// the paper's "sequential head" that speculative dispatch removed from
	// the critical path.
	FrontendOverlap time.Duration
	// LinkTime is the total spent linking section images; LinkOverlap is the
	// portion spent while at least one section was still compiling — the
	// barrier wait the streaming tail eliminated.
	LinkTime    time.Duration
	LinkOverlap time.Duration
	// DriverTime is the I/O-driver generation time, which now runs
	// concurrently with section compilation.
	DriverTime time.Duration
	// CriticalPath is the pipeline's structural lower bound:
	// SetupTime + max(FrontendTime, CompileWallTime) + BackendTail.
	// Elapsed can only exceed it by scheduling noise.
	CriticalPath time.Duration
}

// ParallelStats records the timing decomposition of one parallel
// compilation (elapsed/user time, per-level CPU, per-function times).
type ParallelStats struct {
	Elapsed time.Duration
	// SetupTime is the master's extra structure parse; DispatchTime the
	// section masters' schedule computation (placement only); CompileWallTime
	// the wall-clock span of the whole parallel region (fork of the first
	// section master to the last combine); BackendTail the sequential
	// assembly/link.
	SetupTime       time.Duration
	FrontendTime    time.Duration
	DispatchTime    time.Duration
	CompileWallTime time.Duration
	BackendTail     time.Duration
	// FuncCPU lists every function master's CPU time.
	FuncCPU map[string]time.Duration
	// SectionCPU lists each section master's coordination time.
	SectionCPU map[int]time.Duration
	Workers    int
	// Warnings counts the diagnostics merged into Result.Warnings.
	Warnings int
	// Dispatch summarizes scheduling decisions and estimator accuracy.
	Dispatch DispatchStats
	// Steal reports the work-stealing scheduler's rebalancing activity and
	// the self-tuning cost model's performance.
	Steal StealStats
	// Pipeline reports the overlap won by the pipelined master (all zero
	// under ParallelOptions.Barrier).
	Pipeline PipelineStats
	// Cache reports the backend's artifact-cache counters (cumulative over
	// the backend's lifetime, not just this compilation); zero when the
	// backend is uncached.
	Cache fcache.Stats
	// Faults reports the backend's fault-handling counters and degraded-
	// operation warnings (cumulative, like Cache); zero for backends
	// without a fault-tolerant dispatch layer.
	Faults FaultStats
}

// TotalFuncCPU sums all function masters' CPU time.
func (s *ParallelStats) TotalFuncCPU() time.Duration {
	var t time.Duration
	for _, d := range s.FuncCPU {
		t += d
	}
	return t
}

// ParallelCompile runs the full parallel compiler on src using the backend's
// processors with production dispatch defaults (LPT ordering, batching at
// DefaultBatchThreshold).
func ParallelCompile(file string, src []byte, backend Backend, opts compiler.Options) (*compiler.Result, *ParallelStats, error) {
	return ParallelCompileWith(file, src, backend, opts, ParallelOptions{})
}

// ParallelCompileWith runs the full parallel compiler with an explicit
// dispatch policy.
func ParallelCompileWith(file string, src []byte, backend Backend, opts compiler.Options, popts ParallelOptions) (*compiler.Result, *ParallelStats, error) {
	return ParallelCompileContext(context.Background(), file, src, backend, opts, popts)
}

// frontendVerdict is the master's own phase-1 leg, delivered to the combine
// loop when it finishes racing the speculatively dispatched sections. err is
// non-nil only when the leg was cancelled (the parallel frontend's sole
// error mode); timing reports the parallel frontend's internal wall times
// (zero on the sequential path and on frontend-tier cache hits).
type frontendVerdict struct {
	m      *ast.Module
	bag    *source.DiagBag
	err    error
	time   time.Duration
	timing compiler.FrontendTiming
}

// sectionDone is one section master's outcome, streamed to the combine loop
// as it completes (pos indexes outline.Sections).
type sectionDone struct {
	pos int
	res *SectionResult
	err error
}

// ParallelCompileContext runs the full parallel compiler as an overlapped
// pipeline rather than the paper's four sequential steps:
//
//   - Speculative dispatch: section masters fork the moment the structural
//     parse succeeds, while the master's full frontend runs concurrently.
//     Function masters re-derive phase 1 themselves, so they reach the same
//     verdict on the same source; if the frontend finds semantic errors the
//     master cancels the fleet and reports diagnostics word-identical to
//     the phased master's.
//   - Streaming tail: section results are linked the moment they arrive
//     (link.Builder), so linking overlaps the slowest section instead of
//     waiting behind a barrier, and the I/O driver — which depends only on
//     the frontend module — is generated concurrently too.
//   - End-to-end cancellation: ctx is threaded through every backend call;
//     the first fatal error (or the caller cancelling ctx) severs in-flight
//     RPCs instead of waiting out the stragglers.
//
// Output is byte-identical to the sequential compiler and to the barrier
// baseline (ParallelOptions.Barrier).
func ParallelCompileContext(ctx context.Context, file string, src []byte, backend Backend, opts compiler.Options, popts ParallelOptions) (*compiler.Result, *ParallelStats, error) {
	start := time.Now()
	popts = popts.normalized()
	stats := &ParallelStats{
		FuncCPU:    make(map[string]time.Duration),
		SectionCPU: make(map[int]time.Duration),
		Workers:    backend.Workers(),
		Dispatch: DispatchStats{
			Policy:         popts.Sched,
			BatchThreshold: popts.BatchThreshold,
		},
	}

	// Master, step 1: the extra structural parse that drives partitioning
	// ("setup time" in the paper's overhead accounting). This is the only
	// part of the head that cannot overlap anything: every leg needs the
	// outline.
	t0 := time.Now()
	var outlineBag source.DiagBag
	outline := parser.ParseOutline(file, src, &outlineBag)
	stats.SetupTime = time.Since(t0)
	if outlineBag.HasErrors() || outline == nil {
		return nil, stats, fmt.Errorf("master: syntax errors, compilation aborted:\n%s", outlineBag.String())
	}

	// The content address travels with every request; backends with caching
	// workers use it to avoid re-parsing and re-sending the source.
	srcHash := fcache.HashSource(src)
	var masterCache *fcache.Cache
	if cp, ok := backend.(CacheProvider); ok {
		masterCache = cp.Cache()
	}

	// The self-tuning cost model: fitted against the persisted sample window
	// (empty without a disk tier — then Fit returns the static formula) and
	// memoized in the cache keyed on the record's stat, so back-to-back jobs
	// in a daemon pay one stat call, not a re-read and re-fit. Fitting is
	// guarded: fewer than 3 samples, a degenerate system, or a fit that
	// ranks the window worse than the static formula all keep the paper's
	// heuristic.
	model, persisted := masterCache.FittedCostModel()
	stats.Steal.ModelFitted = model.Fitted
	stats.Steal.SampleCount = len(persisted)

	// The work-stealing fleet: one set of dispatch slots shared by every
	// section master, so a straggler section's queue is drained by its
	// siblings' idle slots instead of waiting on its own. A standalone build
	// sizes a private fleet to the backend and retires it on the way out;
	// under warpd the daemon injects its daemon-lifetime fleet and this
	// build only opens a tagged handle on it — completion waits on the
	// build's own units, never the fleet's. Registered before cancel() so
	// the deferred LIFO runs cancel first: whatever of this build is still
	// queued when we unwind is dropped by Build.Close as cancelled orphans,
	// and its in-flight units drain as immediate no-ops.
	var (
		build     *sched.Build
		privFleet *sched.Fleet
		fleetBase sched.StealStats
	)
	if !popts.NoSteal {
		fleet := popts.fleet
		if fleet == nil {
			privFleet = sched.NewFleet(backend.Workers())
			fleet = privFleet
			defer privFleet.Close()
		}
		build = fleet.Open(popts.tenant)
		defer build.Close()
		fleetBase = fleet.Stats()
		stats.Steal.Enabled = true
		stats.Steal.Shared = privFleet == nil
	}

	// With a peer fleet attached, the master batch-prefetches before any
	// dispatch: the outline already names every function hash this compile
	// can need, so one bounded-concurrency sweep pulls the fleet's finished
	// artifacts into the master cache. Each section master's per-function
	// probe (compiler.LookupObject) then short-circuits those functions as
	// "unchanged" without dispatching — a cold restart in a warm fleet
	// syncs keys instead of recompiling the world.
	if masterCache.HasPeers() {
		var fhs []fcache.FuncHash
		for _, so := range outline.Sections {
			for _, fo := range so.Functions {
				fhs = append(fhs, fcache.FuncHash(fo.Hash))
			}
		}
		compiler.PrefetchObjects(masterCache, fhs, opts)
	}

	// The pipeline context: the first fatal error — or the caller's own
	// cancellation — severs every other in-flight leg through it. The
	// frontend leg is the exception: it answers to the caller's context
	// only, because its verdict is authoritative — when speculative dispatch
	// loses its bet, the fleet's errors are echoes and the abort message
	// must carry the frontend's diagnostics, word-identical to the phased
	// master's. A failing section therefore severs the fleet but lets the
	// (in-process, cheap) frontend leg finish.
	callerCtx := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	feCh := make(chan frontendVerdict, 1)
	runFrontend := func() {
		t := time.Now()
		var timing compiler.FrontendTiming
		fe, err := compiler.FrontendEntryCachedWith(callerCtx, masterCache, srcHash, file, src, compiler.FrontendOptions{
			Parallel: !popts.FrontendSequential,
			Workers:  popts.FrontendWorkers,
			Outline:  outline, // the setup parse already paid for the spans
			Timing:   &timing,
		})
		if err != nil {
			feCh <- frontendVerdict{err: err, time: time.Since(t)}
			return
		}
		feCh <- frontendVerdict{m: fe.Module, bag: fe.Bag, time: time.Since(t), timing: timing}
	}
	secCh := make(chan sectionDone, len(outline.Sections))
	regionStart := time.Now()
	forkSections := func() {
		regionStart = time.Now()
		for i, so := range outline.Sections {
			go func(i int, so parser.SectionOutline) {
				r, err := runSectionMaster(ctx, file, src, srcHash, so, backend, masterCache, model, build, opts, popts)
				secCh <- sectionDone{pos: i, res: r, err: err}
			}(i, so)
		}
	}
	type driverDone struct {
		drv  *iodriver.Driver
		time time.Duration
	}
	drvCh := make(chan driverDone, 1)

	var (
		m      *ast.Module
		bag    *source.DiagBag
		feDone bool
	)
	if popts.Barrier {
		// The paper's strictly phased master, kept as the measured baseline:
		// phase 1 completes — discovering all syntax and semantic errors —
		// before anything is forked.
		runFrontend()
		fe := <-feCh
		stats.FrontendTime = fe.time
		recordFrontendTiming(stats, fe.timing)
		if fe.err != nil {
			return nil, stats, fmt.Errorf("master: frontend: %w", fe.err)
		}
		if fe.bag.HasErrors() {
			return nil, stats, fmt.Errorf("master: front-end errors, compilation aborted:\n%s", fe.bag.String())
		}
		m, bag, feDone = fe.m, fe.bag, true
		forkSections()
	} else {
		// Speculative dispatch: the outline alone is enough to plan and fork
		// section masters, so the master's frontend runs concurrently with
		// the fleet instead of ahead of it.
		go runFrontend()
		forkSections()
	}

	// The combine loop: consume legs as they complete. Each section is
	// linked the moment it arrives; the frontend verdict gates success and
	// releases the I/O-driver leg.
	builder := link.NewBuilder(outline.Module)
	secResults := make([]*SectionResult, len(outline.Sections))
	secErrs := make([]error, len(outline.Sections))
	remaining := len(outline.Sections)
	var feErr error
	for remaining > 0 || !feDone {
		select {
		case fe := <-feCh:
			feDone = true
			stats.FrontendTime = fe.time
			recordFrontendTiming(stats, fe.timing)
			if fe.err != nil {
				// The frontend leg was cancelled — by the caller, or by a
				// failing section severing the pipeline. Keep draining; the
				// error selection below decides what to report.
				feErr = fe.err
				cancel()
				continue
			}
			if fe.bag.HasErrors() {
				// Speculative dispatch lost its bet: sever the in-flight
				// compiles, drain the fleet, and report the diagnostics
				// exactly as the phased master would. The sections' own
				// errors are echoes of the same source, so the frontend
				// verdict takes precedence.
				cancel()
				for remaining > 0 {
					<-secCh
					remaining--
				}
				return nil, stats, fmt.Errorf("master: front-end errors, compilation aborted:\n%s", fe.bag.String())
			}
			m, bag = fe.m, fe.bag
			go func() {
				t := time.Now()
				d := iodriver.Generate(fe.m)
				drvCh <- driverDone{drv: d, time: time.Since(t)}
			}()
		case d := <-secCh:
			remaining--
			if remaining == 0 {
				// Same span the phased master measured: fork of the first
				// section master to the last section's completion.
				stats.CompileWallTime = time.Since(regionStart)
			}
			secResults[d.pos], secErrs[d.pos] = d.res, d.err
			if d.err != nil {
				cancel() // first fatal error severs the siblings
				continue
			}
			if popts.Barrier {
				continue // baseline links after the barrier, below
			}
			lt := time.Now()
			err := builder.Add(outline.Sections[d.pos].Index, sectionObjects(d.res))
			ldur := time.Since(lt)
			stats.Pipeline.LinkTime += ldur
			if remaining > 0 {
				stats.Pipeline.LinkOverlap += ldur
			}
			if err != nil {
				secErrs[d.pos] = err
				cancel()
			}
		}
	}

	// Error selection mirrors the phased master: the first failing section
	// in outline order wins. Cancellation echoes from severed siblings (or
	// from the caller's own ctx) never mask a genuine error.
	var cancelled error
	for i, err := range secErrs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = fmt.Errorf("section %d: %w", outline.Sections[i].Index, err)
			}
			continue
		}
		return nil, stats, fmt.Errorf("section %d: %w", outline.Sections[i].Index, err)
	}
	if feErr != nil {
		// No section reported a genuine error, so the cancellation originated
		// outside the fleet (the caller's ctx); the frontend leg saw it first.
		return nil, stats, fmt.Errorf("master: frontend: %w", feErr)
	}
	if cancelled != nil {
		return nil, stats, cancelled
	}

	// Combine the section masters' results in declaration order. Warnings
	// are merged in section order — the paper's "combining diagnostic
	// output" step — and every reconstructed FuncResult carries a non-nil
	// (if empty) DiagBag, because the structured diagnostics cannot cross
	// the process boundary.
	var funcResults []*compiler.FuncResult
	var warnings []string
	var observed []sched.CostSample
	warnings = append(warnings, compiler.FrontendWarnings(m, bag, nil)...)
	for _, r := range secResults {
		observed = append(observed, r.Samples...)
		stats.SectionCPU[r.Section] = r.MasterTime
		stats.DispatchTime += r.PlanTime
		stats.Dispatch.Units += r.Units
		stats.Dispatch.Batches += r.Batches
		stats.Dispatch.BatchedFuncs += r.BatchedFuncs
		stats.Dispatch.UnchangedFuncs += r.Unchanged
		stats.Dispatch.IncrementalHits += r.WorkerHits
		warnings = append(warnings, r.Warnings...)
		for _, sf := range r.Funcs {
			stats.FuncCPU[fmt.Sprintf("s%d/%s", r.Section, sf.Name)] = sf.CPUTime
			funcResults = append(funcResults, &compiler.FuncResult{
				Name:    sf.Name,
				Section: sf.Object.Section,
				IsEntry: sf.Object.IsEntry,
				Object:  sf.Object,
				Lines:   sf.Lines,
				CPUTime: sf.CPUTime,
				Diags:   &source.DiagBag{},
			})
		}
	}
	stats.Warnings = len(warnings)
	stats.Dispatch.RankCorr = estimatorAccuracy(outline, stats.FuncCPU)
	stats.Steal.StaticRankCorr = stats.Dispatch.RankCorr
	stats.Steal.FittedRankCorr = estimatorAccuracyModel(outline, stats.FuncCPU, model)
	if build != nil {
		// All sections combined: every one of this build's units has been
		// delivered, so Close (idempotent with the deferred one) settles the
		// handle without waiting on sibling builds. A private fleet is
		// retired outright so its idle decomposition ends at the last unit
		// rather than accumulating through the link tail; on a shared fleet
		// the idle delta since Open approximates this job's window.
		build.Close()
		bs := build.Stats()
		stats.Steal.Steals = bs.Steals
		stats.Steal.CrossBuildSteals = bs.CrossBuildSteals
		stats.Steal.BatchSplits = bs.BatchSplits
		stats.Steal.StealLatency = bs.StealLatency
		var fs sched.StealStats
		if privFleet != nil {
			privFleet.Close()
			privFleet.Wait()
			fs = privFleet.Stats()
		} else {
			fs = popts.fleet.Stats()
		}
		stats.Steal.IdleTime = idleDelta(fs.IdleTime, fleetBase.IdleTime)
	}
	// Feed the estimator's loop: append this build's observations to the
	// persisted window (PutCostSamples trims it and is a no-op without a
	// disk tier). Failures are ignored — samples are a scheduling hint.
	if len(observed) > 0 && masterCache != nil {
		_ = masterCache.PutCostSamples(append(persisted, observed...))
	}
	if total := outline.NumFunctions(); total > 0 {
		stats.Dispatch.RecompiledFuncs = total - stats.Dispatch.UnchangedFuncs - stats.Dispatch.IncrementalHits
		stats.Dispatch.RecompileRatio = float64(stats.Dispatch.RecompiledFuncs) / float64(total)
	}

	// Master, step 4: what remains of the sequential tail. Under the
	// pipeline the sections are already linked and the driver leg is in
	// flight — only ordering the cell images and collecting the driver are
	// left. The baseline does all of it here, after the barrier.
	t3 := time.Now()
	if popts.Barrier {
		for i, r := range secResults {
			if err := builder.Add(outline.Sections[i].Index, sectionObjects(r)); err != nil {
				return nil, stats, fmt.Errorf("section %d: %w", outline.Sections[i].Index, err)
			}
		}
	}
	linked, err := builder.Finish()
	if err != nil {
		return nil, stats, err
	}
	var drv *iodriver.Driver
	if popts.Barrier {
		drv = iodriver.Generate(m)
	} else {
		dd := <-drvCh
		drv = dd.drv
		stats.Pipeline.DriverTime = dd.time
	}
	res := &compiler.Result{
		ModuleName: m.Name,
		Module:     linked,
		Driver:     drv,
		Funcs:      funcResults,
		Warnings:   warnings,
	}
	stats.BackendTail = time.Since(t3)
	stats.Elapsed = time.Since(start)
	if !popts.Barrier {
		stats.Pipeline.FrontendOverlap = min(stats.FrontendTime, stats.CompileWallTime)
		stats.Pipeline.CriticalPath = stats.SetupTime + max(stats.FrontendTime, stats.CompileWallTime) + stats.BackendTail
	}
	if cs, ok := backend.(CacheStatser); ok {
		stats.Cache = cs.CacheStats()
	}
	if fs, ok := backend.(FaultStatser); ok {
		stats.Faults = fs.FaultStats()
	}
	return res, stats, nil
}

// recordFrontendTiming surfaces the parallel frontend's internal wall times
// on the pipeline stats (no-op for the zero timing of a sequential or cached
// frontend leg).
func recordFrontendTiming(stats *ParallelStats, t compiler.FrontendTiming) {
	if t.Workers == 0 {
		return
	}
	stats.Pipeline.FrontendParseWall = t.ParseWall
	stats.Pipeline.FrontendCheckWall = t.CheckWall
	stats.Pipeline.FrontendWorkers = t.Workers
}

// sectionObjects extracts a section result's objects in declaration order
// for the linker.
func sectionObjects(r *SectionResult) []*asm.Object {
	objs := make([]*asm.Object, len(r.Funcs))
	for i := range r.Funcs {
		objs[i] = r.Funcs[i].Object
	}
	return objs
}

// estimatorAccuracy computes the Spearman rank correlation between each
// function's estimated cost (lines × loop nesting, from the outline) and
// its measured CPU time. Functions answered from cache have no measured
// compile time and are excluded; with fewer than 3 samples the correlation
// is meaningless noise (always ±1 for 1–2 points), so it is reported as NaN
// and omitted from the stats output.
func estimatorAccuracy(o *parser.Outline, funcCPU map[string]time.Duration) float64 {
	return estimatorAccuracyModel(o, funcCPU, sched.StaticModel())
}

// estimatorAccuracyModel is estimatorAccuracy under an arbitrary cost model
// — the fitted and static models are scored against the same measured times
// to report the before/after-fit correlation.
func estimatorAccuracyModel(o *parser.Outline, funcCPU map[string]time.Duration, m sched.Model) float64 {
	var predicted, actual []float64
	for _, so := range o.Sections {
		for _, fo := range so.Functions {
			cpu, ok := funcCPU[fmt.Sprintf("s%d/%s", so.Index, fo.Name)]
			if !ok || cpu <= 0 {
				continue
			}
			predicted = append(predicted, m.Estimate(sched.Task{Lines: fo.Lines, LoopDepth: fo.LoopDepth}))
			actual = append(actual, cpu.Seconds())
		}
	}
	if len(predicted) < 3 {
		return math.NaN()
	}
	return sched.RankCorrelation(predicted, actual)
}

// unitDone is one dispatch unit's outcome, streamed back to the section
// master as it completes.
type unitDone struct {
	unit    sched.Unit
	replies []*CompileReply
	err     error
}

// runSectionMaster plans the section's dispatch units from the structural
// outline (large functions first, small ones batched under the cost
// threshold), forks one dispatcher goroutine per unit, and combines objects
// and diagnostics incrementally as replies stream in — asm.Decode overlaps
// the slowest in-flight compiles instead of serializing after a
// whole-section barrier. Output (objects, warnings) is emitted in
// declaration order regardless of arrival order.
//
// Before planning anything, the section master probes masterCache's object
// tier with each function's incremental hash: unchanged functions are
// answered on the spot and never reach sched.Plan, so the cost model only
// schedules the functions that genuinely need compiling.
//
// With a non-nil build handle the planned units feed the work-stealing
// fleet instead of private per-unit goroutines: execution order is whatever
// steals make it, unit boundaries may change mid-flight (a steal can crack a
// queued batch open), and the combine loop therefore counts remaining
// *tasks*, not units. Emission stays keyed by declaration index either way.
func runSectionMaster(ctx context.Context, file string, src []byte, srcHash fcache.SourceHash, so parser.SectionOutline, backend Backend, masterCache *fcache.Cache, model sched.Model, build *sched.Build, opts compiler.Options, popts ParallelOptions) (*SectionResult, error) {
	t0 := time.Now()
	res := &SectionResult{
		Section: so.Index,
		Funcs:   make([]SectionFunc, len(so.Functions)),
	}
	tasks := make([]sched.Task, 0, len(so.Functions))
	for i, fo := range so.Functions {
		if entry, ok := compiler.LookupObject(masterCache, fcache.FuncHash(fo.Hash), opts); ok && entry.Name == fo.Name {
			if obj, err := entry.Object(); err == nil {
				res.Funcs[i] = SectionFunc{
					Name:     entry.Name,
					Object:   obj,
					Lines:    entry.Lines,
					Warnings: entry.Warnings,
				}
				res.Unchanged++
				continue
			}
			// An undecodable cached object is treated as a miss: recompile.
		}
		tasks = append(tasks, sched.Task{
			Name:      fo.Name,
			Section:   fo.Section,
			Index:     fo.Index,
			Lines:     fo.Lines,
			LoopDepth: fo.LoopDepth,
		})
	}
	units := sched.PlanCosted(model.Costs(tasks), popts.planThreshold(), backend.Workers())
	res.Units = len(units)
	for _, u := range units {
		if u.IsBatch() {
			res.Batches++
			res.BatchedFuncs += len(u.Tasks)
		}
	}
	res.PlanTime = time.Since(t0)

	batcher, canBatch := backend.(BatchBackend)
	dispatch := func(u sched.Unit) ([]*CompileReply, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if u.IsBatch() && canBatch {
			items := make([]BatchItem, len(u.Tasks))
			for i, t := range u.Tasks {
				items[i] = BatchItem{Section: t.Section, Index: t.Index, FuncHash: fcache.FuncHash(so.Functions[t.Index].Hash)}
			}
			return batcher.CompileBatch(ctx, BatchRequest{
				File:       file,
				Source:     src,
				SourceHash: srcHash,
				Items:      items,
				Opts:       opts,
			})
		}
		// A multi-function unit on a batch-less backend still occupies one
		// processor at a time: its functions run serially in this goroutine.
		replies := make([]*CompileReply, len(u.Tasks))
		for i, t := range u.Tasks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := backend.Compile(ctx, CompileRequest{
				File:       file,
				Source:     src,
				SourceHash: srcHash,
				Section:    t.Section,
				Index:      t.Index,
				FuncHash:   fcache.FuncHash(so.Functions[t.Index].Hash),
				Opts:       opts,
			})
			if err != nil {
				return nil, fmt.Errorf("function %s: %w", t.Name, err)
			}
			replies[i] = r
		}
		return replies, nil
	}

	// The channel is buffered to len(tasks) so deliveries never block on
	// send: an early error return leaks no goroutines. Tasks, not units,
	// bound the count — a steal can split one planned unit into several
	// delivered fragments, but every fragment carries at least one task.
	done := make(chan unitDone, len(tasks))
	deliver := func(u sched.Unit) {
		replies, err := dispatch(u)
		done <- unitDone{unit: u, replies: replies, err: err}
	}
	if build != nil {
		build.Submit(units, deliver)
	} else {
		for _, u := range units {
			go deliver(u)
		}
	}

	// Streaming combine: decode each object the moment its reply lands.
	// Slots are keyed by declaration index, so any request/reply skew —
	// wrong count, wrong name, duplicate index — is a hard error, never a
	// silently zeroed field. The loop runs until every *task* is accounted
	// for: under stealing the number of delivered units is not known up
	// front (splits), only the task total is.
	for pending := len(tasks); pending > 0; {
		d := <-done
		pending -= len(d.unit.Tasks)
		if d.err != nil {
			return nil, d.err
		}
		if len(d.replies) != len(d.unit.Tasks) {
			return nil, fmt.Errorf("dispatch skew: %d replies for %d functions", len(d.replies), len(d.unit.Tasks))
		}
		for k, r := range d.replies {
			t := d.unit.Tasks[k]
			if r == nil || r.Name != t.Name {
				got := "<nil>"
				if r != nil {
					got = r.Name
				}
				return nil, fmt.Errorf("dispatch skew: expected reply for %s, got %s", t.Name, got)
			}
			if t.Index < 0 || t.Index >= len(res.Funcs) || res.Funcs[t.Index].Object != nil {
				return nil, fmt.Errorf("dispatch skew: duplicate or out-of-range index %d for %s", t.Index, t.Name)
			}
			obj, err := asm.Decode(r.ObjectBytes)
			if err != nil {
				return nil, fmt.Errorf("decoding object %s: %w", r.Name, err)
			}
			res.Funcs[t.Index] = SectionFunc{
				Name:     r.Name,
				Object:   obj,
				Lines:    r.Lines,
				CPUTime:  r.CPUTime,
				Warnings: r.Warnings,
			}
			res.CPUTime += r.CPUTime
			if r.CacheHit {
				res.WorkerHits++
			} else if r.CPUTime > 0 {
				res.Samples = append(res.Samples, sched.CostSample{
					Lines:     t.Lines,
					LoopDepth: t.LoopDepth,
					Section:   t.Section,
					Seconds:   r.CPUTime.Seconds(),
				})
			}
		}
	}

	// Emit warnings in declaration order regardless of arrival order, and
	// verify every declared function produced exactly one object.
	for i := range res.Funcs {
		if res.Funcs[i].Object == nil {
			return nil, fmt.Errorf("dispatch skew: no object for function %s", so.Functions[i].Name)
		}
		res.Warnings = append(res.Warnings, res.Funcs[i].Warnings...)
	}
	res.MasterTime = time.Since(t0) - res.CPUTime
	if res.MasterTime < 0 {
		res.MasterTime = 0
	}
	return res, nil
}

// Tasks converts an outline to scheduler tasks (for grouped placement).
func Tasks(o *parser.Outline) []sched.Task {
	var out []sched.Task
	for _, so := range o.Sections {
		for _, fo := range so.Functions {
			out = append(out, sched.Task{
				Name:      fo.Name,
				Section:   fo.Section,
				Index:     fo.Index,
				Lines:     fo.Lines,
				LoopDepth: fo.LoopDepth,
			})
		}
	}
	return out
}

// VerifySameOutput checks that a parallel compilation produced exactly the
// same download module as the sequential compiler — the paper's requirement
// that "the parallel compiler produces the same input for the assembly
// phase as the sequential compiler". Returns an error describing the first
// difference.
func VerifySameOutput(seq, par *link.Module) error {
	if len(seq.Cells) != len(par.Cells) {
		return fmt.Errorf("cell count differs: %d vs %d", len(seq.Cells), len(par.Cells))
	}
	for i := range seq.Cells {
		a, b := seq.Cells[i], par.Cells[i]
		if len(a.Code) != len(b.Code) {
			return fmt.Errorf("cell %d code size differs: %d vs %d", i, len(a.Code), len(b.Code))
		}
		for w := range a.Code {
			if a.Code[w] != b.Code[w] {
				return fmt.Errorf("cell %d word %d differs:\n  seq: %s\n  par: %s", i, w, a.Code[w], b.Code[w])
			}
		}
		if a.DataWords != b.DataWords {
			return fmt.Errorf("cell %d data size differs", i)
		}
	}
	return nil
}

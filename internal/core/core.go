// Package core implements the parallel compiler: the three-level process
// hierarchy of the paper mapped onto Go's concurrency primitives.
//
//	master          (one)           parses the module once to learn its
//	                                structure, aborts on any front-end
//	                                error, forks the section masters, and
//	                                runs the sequential phase-4 tail.
//	section masters (one/section)   fork one function master per function
//	                                of their section, then combine the
//	                                objects and diagnostic output.
//	function masters(one/function)  run phases 2+3 for one function on
//	                                some workstation of the backend.
//
// Processes on the same level never communicate, only parent and child do —
// exactly the paper's structure. Workstations are abstracted behind the
// Backend interface: internal/cluster provides an in-process pool
// (goroutines) and a distributed pool (net/rpc worker processes).
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/asm"
	"repro/internal/ast"
	"repro/internal/compiler"
	"repro/internal/fcache"
	"repro/internal/iodriver"
	"repro/internal/link"
	"repro/internal/parser"
	"repro/internal/sched"
	"repro/internal/source"
)

// CompileRequest names one function of a module for a function master. The
// source travels with the request because the processes share no memory
// (the paper's masters likewise hand the source and parse information to
// their children) — except that SourceHash content-addresses it, so a
// backend whose workers already hold the source (internal/fcache) may clear
// Source and send the 32-byte hash alone.
type CompileRequest struct {
	File string
	// Source is the full module text. It may be empty when SourceHash is
	// set and the receiving worker is known to have the source resident.
	Source []byte
	// SourceHash is fcache.HashSource(Source). Zero means "not computed";
	// cached paths derive it on demand.
	SourceHash fcache.SourceHash
	Section    int // 1-based section index
	Index      int // 0-based function position within the section
	Opts       compiler.Options
}

// CompileReply is the function master's result: the assembled object plus
// the work statistics the section master aggregates.
type CompileReply struct {
	Name        string
	Section     int
	IsEntry     bool
	Lines       int
	ObjectBytes []byte
	CPUTime     time.Duration
	Warnings    []string
}

// Backend runs compile requests on some processor. Implementations must be
// safe for concurrent use; Compile blocks until a processor is free
// (first-come-first-served, as in the paper).
type Backend interface {
	Compile(req CompileRequest) (*CompileReply, error)
	// Workers returns the number of processors behind the backend.
	Workers() int
}

// CacheProvider is implemented by backends whose workers share an artifact
// cache with the master process (cluster.LocalPool). The master then warms
// the frontend tier during its own phase 1, so no worker ever re-parses.
type CacheProvider interface {
	Cache() *fcache.Cache
}

// CacheStatser is implemented by backends that can report cache
// effectiveness counters (cumulative over the backend's lifetime).
type CacheStatser interface {
	CacheStats() fcache.Stats
}

// FaultStats records a backend's fault-handling activity: how often the
// dispatch layer retried, failed over, quarantined or readmitted workers,
// hit call deadlines, or fell back to compiling in-process. Counters are
// cumulative over the backend's lifetime, like cache stats. A healthy
// cluster reports all zeros.
type FaultStats struct {
	// Retries counts requests re-dispatched after a transient failure.
	Retries int64
	// Failovers counts requests that ultimately succeeded after at least
	// one retry — the recovery the paper's system did not have.
	Failovers int64
	// Quarantines counts workers removed from rotation after consecutive
	// failures; Readmissions counts workers probed back into rotation.
	Quarantines  int64
	Readmissions int64
	// LocalFallbacks counts requests compiled in-process because no remote
	// worker was available.
	LocalFallbacks int64
	// DeadlineHits counts calls abandoned because they exceeded the
	// per-call deadline (hung or overloaded worker).
	DeadlineHits int64
	// Warnings carries human-readable notes about degraded operation
	// (worker quarantined, compile fell back to local, degraded start).
	Warnings []string
}

// Any reports whether any fault-handling activity occurred.
func (s FaultStats) Any() bool {
	return s.Retries+s.Failovers+s.Quarantines+s.Readmissions+s.LocalFallbacks+s.DeadlineHits > 0
}

// String renders the counters compactly.
func (s FaultStats) String() string {
	return fmt.Sprintf("retries=%d failovers=%d quarantines=%d readmissions=%d local-fallbacks=%d deadline-hits=%d",
		s.Retries, s.Failovers, s.Quarantines, s.Readmissions, s.LocalFallbacks, s.DeadlineHits)
}

// FaultStatser is implemented by backends with a fault-tolerant dispatch
// layer (cluster.RPCPool).
type FaultStatser interface {
	FaultStats() FaultStats
}

// RunFunctionMaster executes one compile request in the current process,
// re-deriving everything from source — the uncached behavior of the paper's
// function masters, which share only the file system.
func RunFunctionMaster(req CompileRequest) (*CompileReply, error) {
	return RunFunctionMasterWith(req, nil)
}

// RunFunctionMasterWith executes one compile request using cache for the
// shared immutable artifacts (checked frontend, lowered section IR). With a
// nil cache it re-derives everything from source. Backends call it on their
// workers; cmd/warpworker exposes it over RPC with a per-process cache.
func RunFunctionMasterWith(req CompileRequest, cache *fcache.Cache) (*CompileReply, error) {
	h := req.SourceHash
	if h.IsZero() && cache != nil {
		h = fcache.HashSource(req.Source)
	}
	m, info, bag := compiler.FrontendCached(cache, h, req.File, req.Source)
	if bag.HasErrors() {
		return nil, fmt.Errorf("function master: front-end errors:\n%s", bag.String())
	}
	for _, sec := range m.Sections {
		if sec.Index != req.Section {
			continue
		}
		if req.Index < 0 || req.Index >= len(sec.Funcs) {
			return nil, fmt.Errorf("function master: section %d has no function %d", req.Section, req.Index)
		}
		fn := sec.Funcs[req.Index]
		fr, err := compiler.CompileFunctionCached(cache, h, m, info, fn, req.Opts)
		if err != nil {
			return nil, err
		}
		reply := &CompileReply{
			Name:        fr.Name,
			Section:     fr.Section,
			IsEntry:     fr.IsEntry,
			Lines:       fr.Lines,
			ObjectBytes: asm.Encode(fr.Object),
			CPUTime:     fr.CPUTime,
		}
		// The function master's diagnostic output: frontend warnings that
		// belong to this function plus warnings from its own phases 2+3.
		reply.Warnings = append(reply.Warnings, frontendWarnings(m, bag, fn)...)
		for _, d := range fr.Diags.All() {
			if d.Severity == source.Warn {
				reply.Warnings = append(reply.Warnings, d.String())
			}
		}
		return reply, nil
	}
	return nil, fmt.Errorf("function master: no section %d in module", req.Section)
}

// warningOwner returns the function whose declaration contains pos: the
// function with the greatest starting offset not after pos. It returns nil
// for module-level positions before the first function.
func warningOwner(m *ast.Module, pos source.Pos) *ast.FuncDecl {
	var owner *ast.FuncDecl
	for _, sec := range m.Sections {
		for _, f := range sec.Funcs {
			if f.Pos().Offset <= pos.Offset && (owner == nil || f.Pos().Offset > owner.Pos().Offset) {
				owner = f
			}
		}
	}
	return owner
}

// frontendWarnings renders bag's warning diagnostics owned by fn — or, with
// fn nil, the module-level warnings owned by no function. Splitting
// ownership this way means each warning is reported by exactly one master
// even though every function master sees the whole module's diagnostics.
func frontendWarnings(m *ast.Module, bag *source.DiagBag, fn *ast.FuncDecl) []string {
	var out []string
	for _, d := range bag.All() {
		if d.Severity != source.Warn {
			continue
		}
		if warningOwner(m, d.Pos) == fn {
			out = append(out, d.String())
		}
	}
	return out
}

// SectionResult is what one section master hands back to the master.
type SectionResult struct {
	Section int
	Objects []*asm.Object
	// CPUTime totals the function masters' compile times; MasterTime is the
	// section master's own coordination time; FuncCPU breaks CPUTime down
	// per function.
	CPUTime    time.Duration
	MasterTime time.Duration
	FuncCPU    map[string]time.Duration
	// Lines[i] is the source line count of Objects[i]'s function.
	Lines    []int
	Warnings []string
}

// ParallelStats records the timing decomposition of one parallel
// compilation (elapsed/user time, per-level CPU, per-function times).
type ParallelStats struct {
	Elapsed time.Duration
	// SetupTime is the master's extra structure parse; SchedulingTime its
	// section-master coordination; BackendTail the sequential assembly/link.
	SetupTime      time.Duration
	FrontendTime   time.Duration
	SchedulingTime time.Duration
	BackendTail    time.Duration
	// FuncCPU lists every function master's CPU time.
	FuncCPU map[string]time.Duration
	// SectionCPU lists each section master's coordination time.
	SectionCPU map[int]time.Duration
	Workers    int
	// Warnings counts the diagnostics merged into Result.Warnings.
	Warnings int
	// Cache reports the backend's artifact-cache counters (cumulative over
	// the backend's lifetime, not just this compilation); zero when the
	// backend is uncached.
	Cache fcache.Stats
	// Faults reports the backend's fault-handling counters and degraded-
	// operation warnings (cumulative, like Cache); zero for backends
	// without a fault-tolerant dispatch layer.
	Faults FaultStats
}

// TotalFuncCPU sums all function masters' CPU time.
func (s *ParallelStats) TotalFuncCPU() time.Duration {
	var t time.Duration
	for _, d := range s.FuncCPU {
		t += d
	}
	return t
}

// ParallelCompile runs the full parallel compiler on src using the backend's
// processors.
func ParallelCompile(file string, src []byte, backend Backend, opts compiler.Options) (*compiler.Result, *ParallelStats, error) {
	start := time.Now()
	stats := &ParallelStats{
		FuncCPU:    make(map[string]time.Duration),
		SectionCPU: make(map[int]time.Duration),
		Workers:    backend.Workers(),
	}

	// Master, step 1: the extra structural parse that drives partitioning
	// ("setup time" in the paper's overhead accounting).
	t0 := time.Now()
	var outlineBag source.DiagBag
	outline := parser.ParseOutline(file, src, &outlineBag)
	stats.SetupTime = time.Since(t0)
	if outlineBag.HasErrors() || outline == nil {
		return nil, stats, fmt.Errorf("master: syntax errors, compilation aborted:\n%s", outlineBag.String())
	}

	// The content address travels with every request; backends with caching
	// workers use it to avoid re-parsing and re-sending the source.
	srcHash := fcache.HashSource(src)
	var masterCache *fcache.Cache
	if cp, ok := backend.(CacheProvider); ok {
		masterCache = cp.Cache()
	}

	// Master, step 2: phase 1 proper. All syntax and semantic errors are
	// discovered here and abort the compilation before any fork. When the
	// backend shares a cache with this process, this run also warms the
	// frontend tier for every function master.
	t1 := time.Now()
	m, _, bag := compiler.FrontendCached(masterCache, srcHash, file, src)
	stats.FrontendTime = time.Since(t1)
	if bag.HasErrors() {
		return nil, stats, fmt.Errorf("master: front-end errors, compilation aborted:\n%s", bag.String())
	}

	// Master, step 3: fork one section master per section and wait.
	t2 := time.Now()
	results := make([]*SectionResult, len(outline.Sections))
	errs := make([]error, len(outline.Sections))
	var wg sync.WaitGroup
	for i, so := range outline.Sections {
		wg.Add(1)
		go func(i int, so parser.SectionOutline) {
			defer wg.Done()
			results[i], errs[i] = runSectionMaster(file, src, srcHash, so, backend, opts)
		}(i, so)
	}
	wg.Wait()
	stats.SchedulingTime = time.Since(t2)

	// Combine the section masters' results. Warnings are merged in section
	// order — the paper's "combining diagnostic output" step — and every
	// reconstructed FuncResult carries a non-nil (if empty) DiagBag, because
	// the structured diagnostics cannot cross the process boundary.
	var funcResults []*compiler.FuncResult
	var warnings []string
	warnings = append(warnings, frontendWarnings(m, bag, nil)...)
	for i, r := range results {
		if errs[i] != nil {
			return nil, stats, fmt.Errorf("section %d: %w", outline.Sections[i].Index, errs[i])
		}
		stats.SectionCPU[r.Section] = r.MasterTime
		warnings = append(warnings, r.Warnings...)
		for name, d := range r.FuncCPU {
			stats.FuncCPU[fmt.Sprintf("s%d/%s", r.Section, name)] = d
		}
		for k, obj := range r.Objects {
			fr := &compiler.FuncResult{
				Name:    obj.Name,
				Section: obj.Section,
				IsEntry: obj.IsEntry,
				Object:  obj,
				Diags:   &source.DiagBag{},
			}
			if k < len(r.Lines) {
				fr.Lines = r.Lines[k]
			}
			if d, ok := r.FuncCPU[obj.Name]; ok {
				fr.CPUTime = d
			}
			funcResults = append(funcResults, fr)
		}
	}
	stats.Warnings = len(warnings)

	// Master, step 4: the sequential tail (assembly already happened per
	// function; what remains is linking and driver generation — the paper's
	// phase 4 minus the per-function work).
	t3 := time.Now()
	linked, err := compiler.LinkResults(m.Name, funcResults)
	if err != nil {
		return nil, stats, err
	}
	res := &compiler.Result{
		ModuleName: m.Name,
		Module:     linked,
		Driver:     iodriver.Generate(m),
		Funcs:      funcResults,
		Warnings:   warnings,
	}
	stats.BackendTail = time.Since(t3)
	stats.Elapsed = time.Since(start)
	if cs, ok := backend.(CacheStatser); ok {
		stats.Cache = cs.CacheStats()
	}
	if fs, ok := backend.(FaultStatser); ok {
		stats.Faults = fs.FaultStats()
	}
	return res, stats, nil
}

// runSectionMaster forks one function master per function of the section
// (concurrently — the backend's worker pool provides the FCFS placement),
// combines the objects in declaration order, and merges diagnostics.
func runSectionMaster(file string, src []byte, srcHash fcache.SourceHash, so parser.SectionOutline, backend Backend, opts compiler.Options) (*SectionResult, error) {
	t0 := time.Now()
	res := &SectionResult{Section: so.Index, FuncCPU: make(map[string]time.Duration)}

	replies := make([]*CompileReply, len(so.Functions))
	errs := make([]error, len(so.Functions))
	var wg sync.WaitGroup
	for i := range so.Functions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = backend.Compile(CompileRequest{
				File:       file,
				Source:     src,
				SourceHash: srcHash,
				Section:    so.Index,
				Index:      i,
				Opts:       opts,
			})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("function %s: %w", so.Functions[i].Name, err)
		}
	}
	// Combine results in declaration order so the section's phase-4 input
	// is identical to the sequential compiler's.
	for _, r := range replies {
		obj, err := asm.Decode(r.ObjectBytes)
		if err != nil {
			return nil, fmt.Errorf("decoding object %s: %w", r.Name, err)
		}
		res.Objects = append(res.Objects, obj)
		res.Lines = append(res.Lines, r.Lines)
		res.CPUTime += r.CPUTime
		res.FuncCPU[r.Name] = r.CPUTime
		res.Warnings = append(res.Warnings, r.Warnings...)
	}
	res.MasterTime = time.Since(t0) - res.CPUTime
	if res.MasterTime < 0 {
		res.MasterTime = 0
	}
	return res, nil
}

// StatsFromReplies fills per-function CPU times in stats; exposed for
// backends that track their own replies.
func StatsFromReplies(stats *ParallelStats, replies []*CompileReply) {
	for _, r := range replies {
		stats.FuncCPU[fmt.Sprintf("s%d/%s", r.Section, r.Name)] = r.CPUTime
	}
}

// Tasks converts an outline to scheduler tasks (for grouped placement).
func Tasks(o *parser.Outline) []sched.Task {
	var out []sched.Task
	for _, so := range o.Sections {
		for _, fo := range so.Functions {
			out = append(out, sched.Task{
				Name:      fo.Name,
				Section:   fo.Section,
				Index:     fo.Index,
				Lines:     fo.Lines,
				LoopDepth: fo.LoopDepth,
			})
		}
	}
	return out
}

// VerifySameOutput checks that a parallel compilation produced exactly the
// same download module as the sequential compiler — the paper's requirement
// that "the parallel compiler produces the same input for the assembly
// phase as the sequential compiler". Returns an error describing the first
// difference.
func VerifySameOutput(seq, par *link.Module) error {
	if len(seq.Cells) != len(par.Cells) {
		return fmt.Errorf("cell count differs: %d vs %d", len(seq.Cells), len(par.Cells))
	}
	for i := range seq.Cells {
		a, b := seq.Cells[i], par.Cells[i]
		if len(a.Code) != len(b.Code) {
			return fmt.Errorf("cell %d code size differs: %d vs %d", i, len(a.Code), len(b.Code))
		}
		for w := range a.Code {
			if a.Code[w] != b.Code[w] {
				return fmt.Errorf("cell %d word %d differs:\n  seq: %s\n  par: %s", i, w, a.Code[w], b.Code[w])
			}
		}
		if a.DataWords != b.DataWords {
			return fmt.Errorf("cell %d data size differs", i)
		}
	}
	return nil
}

package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compiler"
	"repro/internal/fcache"
	"repro/internal/wgen"
)

// TestStealParityMatchesSequential is the stealing path's parity suite: with
// the work-stealing fleet on (the default), output and warnings must be
// word-identical to the sequential compiler at every worker count, on both a
// batch-capable and a batch-less backend — steals and splits reorder
// execution, never emission.
func TestStealParityMatchesSequential(t *testing.T) {
	programs := []struct {
		name string
		src  []byte
	}{
		{"skewed", wgen.SkewedProgram(3, 6)},
		{"small-funcs", wgen.SmallFuncsProgram(12)},
	}
	backends := []struct {
		name string
		mk   func(workers int) Backend
	}{
		{"batch-capable", func(w int) Backend { return &batchingBackend{localBackend: newLocalBackend(w)} }},
		{"batch-less", func(w int) Backend { return newLocalBackend(w) }},
	}
	for _, p := range programs {
		seq, err := compiler.CompileModule("m.w2", p.src, compiler.Options{})
		if err != nil {
			t.Fatalf("%s sequential: %v", p.name, err)
		}
		for _, be := range backends {
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(p.name+"/"+be.name+"/w"+string(rune('0'+workers)), func(t *testing.T) {
					par, stats, err := ParallelCompileWith("m.w2", p.src, be.mk(workers),
						compiler.Options{}, ParallelOptions{})
					if err != nil {
						t.Fatalf("parallel: %v", err)
					}
					if err := VerifySameOutput(seq.Module, par.Module); err != nil {
						t.Errorf("stolen/split output differs from sequential: %v", err)
					}
					if len(par.Warnings) != len(seq.Warnings) {
						t.Fatalf("warnings: got %d, want %d", len(par.Warnings), len(seq.Warnings))
					}
					for i := range seq.Warnings {
						if par.Warnings[i] != seq.Warnings[i] {
							t.Errorf("warning %d differs: %q vs %q", i, par.Warnings[i], seq.Warnings[i])
						}
					}
					if !stats.Steal.Enabled {
						t.Error("default options must dispatch through the stealer")
					}
					if len(stats.Steal.IdleTime) != workers {
						t.Errorf("idle decomposition has %d slots, want %d", len(stats.Steal.IdleTime), workers)
					}
				})
			}
		}
	}
}

// TestNoStealDisablesFleet: the -no-steal escape hatch pins static dispatch.
func TestNoStealDisablesFleet(t *testing.T) {
	src := wgen.SmallFuncsProgram(8)
	_, stats, err := ParallelCompileWith("m.w2", src, newLocalBackend(2),
		compiler.Options{}, ParallelOptions{NoSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steal.Enabled || stats.Steal.Steals != 0 {
		t.Errorf("NoSteal must bypass the fleet: %+v", stats.Steal)
	}
}

// cachingBackend is a localBackend whose workers share an artifact cache with
// the master (like cluster.LocalPool), which switches on sample persistence.
type cachingBackend struct {
	*localBackend
	cache *fcache.Cache
}

func (b *cachingBackend) Cache() *fcache.Cache { return b.cache }

func (b *cachingBackend) Compile(ctx context.Context, req CompileRequest) (*CompileReply, error) {
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-b.sem }()
	return RunFunctionMasterWith(req, b.cache)
}

func newCachingBackend(t *testing.T, workers int) *cachingBackend {
	t.Helper()
	c := fcache.New(16 << 20)
	if err := c.AttachDisk(t.TempDir(), 16<<20); err != nil {
		t.Fatal(err)
	}
	return &cachingBackend{localBackend: newLocalBackend(workers), cache: c}
}

// TestEstimatorSamplesPersistAcrossBuilds drives the closed loop end to end:
// build 1 records observed samples into the disk tier, build 2 (a different
// module, so nothing object-caches) fits the model from them and reports the
// rank-correlation comparison. The fit guard guarantees the fitted model
// never ranks the persisted window worse than static, so ModelFitted may be
// legitimately false on noisy boxes — what must hold is that samples
// accumulate and the comparison is reported.
func TestEstimatorSamplesPersistAcrossBuilds(t *testing.T) {
	backend := newCachingBackend(t, 2)

	_, stats1, err := ParallelCompileWith("a.w2", wgen.UserProgram(), backend, compiler.Options{}, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Steal.SampleCount != 0 {
		t.Errorf("cold cache must start with 0 persisted samples, got %d", stats1.Steal.SampleCount)
	}
	persisted := backend.cache.CostSamples()
	if len(persisted) == 0 {
		t.Fatal("build 1 must persist observed cost samples")
	}

	_, stats2, err := ParallelCompileWith("b.w2", wgen.SkewedProgram(2, 5), backend, compiler.Options{}, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Steal.SampleCount != len(persisted) {
		t.Errorf("build 2 saw %d persisted samples, want %d", stats2.Steal.SampleCount, len(persisted))
	}
	if n := len(backend.cache.CostSamples()); n <= len(persisted) {
		t.Errorf("build 2 must append its own samples: window %d after %d", n, len(persisted))
	}
	f, s := stats2.Steal.FittedRankCorr, stats2.Steal.StaticRankCorr
	if !math.IsNaN(f) && !math.IsNaN(s) && stats2.Steal.ModelFitted && f < s-0.25 {
		// The guard holds exactly on the persisted window; against the *new*
		// build's measured CPU both models face fresh noise, so allow slack —
		// but a fitted model far below static means the loop is broken.
		t.Errorf("fitted model ranks much worse than static on fresh build: fitted=%.2f static=%.2f", f, s)
	}

	// Cache hits must not contaminate the window: rebuilding a.w2 verbatim
	// compiles nothing and therefore records nothing new.
	before := len(backend.cache.CostSamples())
	_, _, err = ParallelCompileWith("a.w2", wgen.UserProgram(), backend, compiler.Options{}, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after := len(backend.cache.CostSamples()); after != before {
		t.Errorf("all-hit rebuild changed the sample window: %d -> %d", before, after)
	}
}

// TestCorruptSampleRecordFallsBackStatic: scribbling over the persisted
// record must never fail a compile — the build runs on the static model and
// rewrites a clean window.
func TestCorruptSampleRecordFallsBackStatic(t *testing.T) {
	backend := newCachingBackend(t, 2)
	if _, _, err := ParallelCompileWith("a.w2", wgen.UserProgram(), backend, compiler.Options{}, ParallelOptions{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(backend.cache.DiskDir(), "cost-samples.wfc")
	if err := os.WriteFile(path, []byte("scribble"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, stats, err := ParallelCompileWith("b.w2", wgen.SmallFuncsProgram(6), backend, compiler.Options{}, ParallelOptions{})
	if err != nil {
		t.Fatalf("corrupt sample record must not fail the build: %v", err)
	}
	if stats.Steal.ModelFitted || stats.Steal.SampleCount != 0 {
		t.Errorf("corrupt record must mean static model and an empty window: %+v", stats.Steal)
	}
	if n := len(backend.cache.CostSamples()); n == 0 {
		t.Error("the build after corruption must persist a fresh window")
	}
}

package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/parser"
)

// TestEstimatorAccuracySampleGuard: Spearman rank correlation over fewer
// than 3 samples is noise (always ±1), so estimatorAccuracy must report NaN
// — which the stats printer omits — and switch to a real value at 3.
func TestEstimatorAccuracySampleGuard(t *testing.T) {
	outline := func(n int) (*parser.Outline, map[string]time.Duration) {
		so := parser.SectionOutline{Index: 1}
		cpu := make(map[string]time.Duration)
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			so.Functions = append(so.Functions, parser.FuncOutline{
				Name: name, Section: 1, Lines: 10 * (i + 1), LoopDepth: 1,
			})
			cpu["s1/"+name] = time.Duration(i+1) * time.Millisecond
		}
		return &parser.Outline{Sections: []parser.SectionOutline{so}}, cpu
	}

	for n := 0; n < 3; n++ {
		o, cpu := outline(n)
		if got := estimatorAccuracy(o, cpu); !math.IsNaN(got) {
			t.Errorf("%d samples: estimatorAccuracy = %v, want NaN", n, got)
		}
	}
	o, cpu := outline(3)
	got := estimatorAccuracy(o, cpu)
	if math.IsNaN(got) || got < -1 || got > 1 {
		t.Errorf("3 samples: estimatorAccuracy = %v, want a correlation in [-1,1]", got)
	}

	// Functions without a recorded CPU time (cache hits never ran) do not
	// count as samples.
	o4, cpu4 := outline(4)
	delete(cpu4, "s1/a")
	delete(cpu4, "s1/b")
	if got := estimatorAccuracy(o4, cpu4); !math.IsNaN(got) {
		t.Errorf("2 measured of 4: estimatorAccuracy = %v, want NaN", got)
	}
}

package iodriver

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/source"
)

func driverFor(t *testing.T, src string) *Driver {
	t.Helper()
	var bag source.DiagBag
	m := parser.Parse("t.w2", []byte(src), &bag)
	if bag.HasErrors() {
		t.Fatal(bag.String())
	}
	return Generate(m)
}

const src = `
module filter (in xs: float[256], in coeffs: float[16], out ys: float[256])
section 1 {
    function cell() {
        var v: float;
        receive(X, v);
        send(Y, v);
    }
}
`

func TestGenerateStreams(t *testing.T) {
	d := driverFor(t, src)
	if d.Module != "filter" {
		t.Errorf("module = %q", d.Module)
	}
	if len(d.In) != 2 || len(d.Out) != 1 {
		t.Fatalf("streams in=%d out=%d", len(d.In), len(d.Out))
	}
	if d.InputElems() != 272 || d.OutputElems() != 256 {
		t.Errorf("elems in=%d out=%d, want 272/256", d.InputElems(), d.OutputElems())
	}
	if !d.In[0].Float {
		t.Error("float stream misclassified")
	}
}

func TestIntStreamClassified(t *testing.T) {
	d := driverFor(t, `
module m (in ns: int[4], out ys: float)
section 1 {
    function cell() { send(Y, 1.0); }
}
`)
	if d.In[0].Float {
		t.Error("int stream classified as float")
	}
	if d.In[0].Elems != 4 || d.Out[0].Elems != 1 {
		t.Errorf("elems wrong: %+v", d)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := driverFor(t, src)
	f := func(vals []float64) bool {
		// Clamp to float32 range to keep the property exact.
		in := make([]float64, len(vals))
		for i, v := range vals {
			in[i] = float64(float32(math.Mod(v, 1e30)))
		}
		words := d.EncodeInput(in)
		out := d.DecodeOutput(words)
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] && !(math.IsNaN(out[i]) && math.IsNaN(in[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSourceListsStreams(t *testing.T) {
	d := driverFor(t, src)
	out := d.Source()
	for _, want := range []string{"filter_run", "xs", "coeffs", "ys", "256 words", "16 words", "warp_feed", "warp_drain"} {
		if !strings.Contains(out, want) {
			t.Errorf("driver source missing %q:\n%s", want, out)
		}
	}
}

// Package iodriver implements the head of compiler phase 4: generation of
// the host-side I/O driver for a compiled module. The driver describes how
// the host feeds the module's input streams into the first cell and drains
// results from the last cell, and performs the word-level encoding (every
// queue word is an IEEE single, per the compiler's wire protocol).
package iodriver

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/machine"
)

// StreamSpec describes one module-level stream.
type StreamSpec struct {
	Name string
	Dir  ast.StreamDir
	// Elems is the declared element count (product of array dimensions; 1
	// for scalar streams).
	Elems int
	// Float reports whether elements are floats (ints are converted on the
	// wire).
	Float bool
}

// Driver is the generated host-side I/O driver.
type Driver struct {
	Module string
	In     []StreamSpec
	Out    []StreamSpec
}

// Generate builds the driver from the module's stream declarations.
func Generate(m *ast.Module) *Driver {
	d := &Driver{Module: m.Name}
	for _, sp := range m.Streams {
		spec := StreamSpec{Name: sp.Name, Dir: sp.Dir, Elems: 1, Float: sp.Type.Name == "float"}
		for _, dim := range sp.Type.Dims {
			spec.Elems *= dim
		}
		if sp.Dir == ast.StreamIn {
			d.In = append(d.In, spec)
		} else {
			d.Out = append(d.Out, spec)
		}
	}
	return d
}

// InputElems returns the total declared input length (0 if no input
// streams were declared).
func (d *Driver) InputElems() int {
	n := 0
	for _, s := range d.In {
		n += s.Elems
	}
	return n
}

// OutputElems returns the total declared output length.
func (d *Driver) OutputElems() int {
	n := 0
	for _, s := range d.Out {
		n += s.Elems
	}
	return n
}

// EncodeInput converts host float64 values to wire words.
func (d *Driver) EncodeInput(vals []float64) []machine.WordVal {
	out := make([]machine.WordVal, len(vals))
	for i, v := range vals {
		out[i] = machine.FloatWord(float32(v))
	}
	return out
}

// DecodeOutput converts wire words back to host float64 values. The wire
// protocol sends every word as an IEEE single (integers are converted by
// the cells before sending).
func (d *Driver) DecodeOutput(words []machine.WordVal) []float64 {
	out := make([]float64, len(words))
	for i, w := range words {
		out[i] = float64(w.Float())
	}
	return out
}

// Source emits the generated host driver program (the phase-4 artifact the
// real compiler wrote out for the Warp host): a C-flavoured listing that
// documents stream order, sizes and encoding.
func (d *Driver) Source() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "/* host I/O driver for module %s -- generated, do not edit */\n", d.Module)
	fmt.Fprintf(&sb, "void %s_run(float *in, int in_len, float *out, int out_len) {\n", d.Module)
	sb.WriteString("    /* input streams */\n")
	for _, s := range d.In {
		fmt.Fprintf(&sb, "    /*   in  %-12s %6d words (%s) */\n", s.Name, s.Elems, typeName(s))
	}
	sb.WriteString("    /* output streams */\n")
	for _, s := range d.Out {
		fmt.Fprintf(&sb, "    /*   out %-12s %6d words (%s) */\n", s.Name, s.Elems, typeName(s))
	}
	sb.WriteString("    warp_feed(in, in_len);      /* ieee singles onto the X pathway */\n")
	sb.WriteString("    warp_drain(out, out_len);   /* ieee singles off the Y pathway  */\n")
	sb.WriteString("}\n")
	return sb.String()
}

func typeName(s StreamSpec) string {
	if s.Float {
		return "float"
	}
	return "int"
}

package sem

import (
	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/types"
)

// Info holds the results of checking a module.
type Info struct {
	// Uses maps every resolved identifier use to its object.
	Uses map[*ast.Ident]*Object
	// FuncObjs maps each function declaration to its object.
	FuncObjs map[*ast.FuncDecl]*Object
	// Locals lists, per function, every local variable and parameter object
	// in declaration order; code generation uses it for frame layout.
	Locals map[*ast.FuncDecl][]*Object
}

// ObjectOf returns the object an identifier resolves to, or nil.
func (i *Info) ObjectOf(id *ast.Ident) *Object { return i.Uses[id] }

// Check type-checks the module and reports problems to diags. The returned
// Info is valid even when errors were found, but callers must consult diags
// before code generation.
func Check(m *ast.Module, diags *source.DiagBag) *Info {
	c := &checker{
		diags: diags,
		info: &Info{
			Uses:     make(map[*ast.Ident]*Object),
			FuncObjs: make(map[*ast.FuncDecl]*Object),
			Locals:   make(map[*ast.FuncDecl][]*Object),
		},
	}
	c.module(m)
	return c.info
}

type checker struct {
	diags *source.DiagBag
	info  *Info

	fn        *ast.FuncDecl // function being checked
	loopDepth int
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.diags.Errorf(pos, format, args...)
}

// ---------------------------------------------------------------------------
// Declarations

func (c *checker) module(m *ast.Module) {
	moduleScope := NewScope(nil)
	for _, sp := range m.Streams {
		t := c.resolveType(sp.Type)
		obj := &Object{Name: sp.Name, Kind: StreamObj, Type: t, Pos: sp.Pos(), Decl: sp}
		if prev := moduleScope.Insert(obj); prev != nil {
			c.errorf(sp.Pos(), "stream %s redeclared (previous declaration at %s)", sp.Name, prev.Pos)
		}
	}

	seenSection := make(map[int]source.Pos)
	for _, sec := range m.Sections {
		if pos, dup := seenSection[sec.Index]; dup {
			c.errorf(sec.Pos(), "section %d redeclared (previous declaration at %s)", sec.Index, pos)
		}
		seenSection[sec.Index] = sec.Pos()
		if sec.Of != 0 && sec.Of != len(m.Sections) {
			c.errorf(sec.Pos(), "section %d declares \"of %d\" but module has %d sections",
				sec.Index, sec.Of, len(m.Sections))
		}
		c.section(sec, moduleScope)
	}
}

// section checks the functions of one section. Function names live in a
// per-section scope; a function may call only functions declared before it
// in the same section, which rules out recursion and keeps functions
// independently compilable (the paper's "minimal inter-procedural
// optimization").
func (c *checker) section(sec *ast.Section, moduleScope *Scope) {
	secScope := NewScope(moduleScope)
	for _, fn := range sec.Funcs {
		sig := c.signature(fn)
		fn.Sig = sig
		obj := &Object{Name: fn.Name, Kind: FuncObj, Type: sig, Pos: fn.Pos(), Decl: fn}
		c.info.FuncObjs[fn] = obj
		// Check the body BEFORE inserting the function's own name, so the
		// body cannot call the function recursively.
		c.funcBody(fn, secScope)
		if prev := secScope.Insert(obj); prev != nil {
			c.errorf(fn.Pos(), "function %s redeclared in section %d (previous declaration at %s)",
				fn.Name, sec.Index, prev.Pos)
		}
	}
}

func (c *checker) signature(fn *ast.FuncDecl) *types.Func {
	sig := &types.Func{Result: types.VoidType}
	for _, p := range fn.Params {
		t := c.resolveType(p.Type)
		if !types.IsScalar(t) && !types.IsInvalid(t) {
			c.errorf(p.Pos(), "parameter %s of function %s has non-scalar type %s (signatures must be scalar)",
				p.Name, fn.Name, t)
			t = types.InvalidType
		}
		sig.Params = append(sig.Params, t)
	}
	if fn.Result != nil {
		t := c.resolveType(fn.Result)
		if !types.IsScalar(t) && !types.IsInvalid(t) {
			c.errorf(fn.Result.Pos(), "result of function %s has non-scalar type %s (signatures must be scalar)",
				fn.Name, t)
			t = types.InvalidType
		}
		sig.Result = t
	}
	return sig
}

func (c *checker) funcBody(fn *ast.FuncDecl, secScope *Scope) {
	c.fn = fn
	c.loopDepth = 0
	fnScope := NewScope(secScope)
	for _, p := range fn.Params {
		obj := &Object{Name: p.Name, Kind: ParamObj, Type: c.resolveType(p.Type), Pos: p.Pos(), Decl: p}
		if prev := fnScope.Insert(obj); prev != nil {
			c.errorf(p.Pos(), "parameter %s redeclared (previous declaration at %s)", p.Name, prev.Pos)
		} else {
			c.info.Locals[fn] = append(c.info.Locals[fn], obj)
		}
	}
	c.block(fn.Body, fnScope)
	if !fn.Sig.Result.Equal(types.VoidType) && !blockReturns(fn.Body) {
		c.errorf(fn.Pos(), "function %s: missing return (not all paths return a %s value)",
			fn.Name, fn.Sig.Result)
	}
	c.fn = nil
}

func (c *checker) resolveType(te *ast.TypeExpr) types.Type {
	if te == nil {
		return types.InvalidType
	}
	var base types.Type
	switch te.Name {
	case "int":
		base = types.IntType
	case "float":
		base = types.FloatType
	case "bool":
		base = types.BoolType
	default:
		base = types.InvalidType
	}
	// Dims are written outermost first: float[2][3] is a 2-array of 3-arrays.
	t := base
	for i := len(te.Dims) - 1; i >= 0; i-- {
		d := te.Dims[i]
		if d <= 0 {
			c.errorf(te.Pos(), "array dimension must be positive, got %d", d)
			d = 1
		}
		t = &types.Array{Elem: t, Len: d}
	}
	te.T = t
	return t
}

// ---------------------------------------------------------------------------
// Statements

func (c *checker) block(b *ast.Block, outer *Scope) {
	scope := NewScope(outer)
	for _, s := range b.Stmts {
		c.stmt(s, scope)
	}
}

func (c *checker) stmt(s ast.Stmt, scope *Scope) {
	switch s := s.(type) {
	case *ast.Block:
		c.block(s, scope)
	case *ast.VarDecl:
		t := c.resolveType(s.Type)
		if s.Init != nil {
			it := c.expr(s.Init, scope)
			c.assignable(s.Init.Pos(), t, it, &s.Init, "initialization of "+s.Name)
		}
		obj := &Object{Name: s.Name, Kind: VarObj, Type: t, Pos: s.Pos(), Decl: s}
		if prev := scope.Insert(obj); prev != nil {
			c.errorf(s.Pos(), "%s redeclared in this block (previous declaration at %s)", s.Name, prev.Pos)
		} else {
			c.info.Locals[c.fn] = append(c.info.Locals[c.fn], obj)
		}
	case *ast.Assign:
		lt := c.lvalue(s.LHS, scope)
		rt := c.expr(s.RHS, scope)
		c.assignable(s.Pos(), lt, rt, &s.RHS, "assignment")
	case *ast.If:
		ct := c.expr(s.Cond, scope)
		c.wantBool(s.Cond.Pos(), ct, "if condition")
		c.block(s.Then, scope)
		if s.Else != nil {
			c.stmt(s.Else, scope)
		}
	case *ast.While:
		ct := c.expr(s.Cond, scope)
		c.wantBool(s.Cond.Pos(), ct, "while condition")
		c.loopDepth++
		c.block(s.Body, scope)
		c.loopDepth--
	case *ast.For:
		obj := scope.Lookup(s.Var.Name)
		if obj == nil {
			c.errorf(s.Var.Pos(), "undeclared loop variable %s", s.Var.Name)
		} else {
			c.info.Uses[s.Var] = obj
			if obj.Kind == FuncObj || obj.Kind == StreamObj {
				c.errorf(s.Var.Pos(), "%s %s cannot be a loop variable", obj.Kind, obj.Name)
			} else if !obj.Type.Equal(types.IntType) && !types.IsInvalid(obj.Type) {
				c.errorf(s.Var.Pos(), "loop variable %s must have type int, not %s", s.Var.Name, obj.Type)
			}
			s.Var.SetType(types.IntType)
		}
		c.wantInt(s.Lo.Pos(), c.expr(s.Lo, scope), "loop lower bound")
		c.wantInt(s.Hi.Pos(), c.expr(s.Hi, scope), "loop upper bound")
		if s.Step != nil {
			c.wantInt(s.Step.Pos(), c.expr(s.Step, scope), "loop step")
			if lit, ok := s.Step.(*ast.IntLit); ok && lit.Value == 0 {
				c.errorf(s.Step.Pos(), "loop step must not be zero")
			}
		}
		c.loopDepth++
		c.block(s.Body, scope)
		c.loopDepth--
	case *ast.Return:
		var want types.Type = types.VoidType
		if c.fn != nil && c.fn.Sig != nil {
			want = c.fn.Sig.Result
		}
		if s.Value == nil {
			if !want.Equal(types.VoidType) {
				c.errorf(s.Pos(), "missing return value (function returns %s)", want)
			}
			return
		}
		if want.Equal(types.VoidType) {
			c.errorf(s.Pos(), "unexpected return value in function without result type")
			c.expr(s.Value, scope)
			return
		}
		got := c.expr(s.Value, scope)
		c.assignable(s.Pos(), want, got, &s.Value, "return")
	case *ast.ExprStmt:
		t := c.expr(s.X, scope)
		if _, ok := s.X.(*ast.CallExpr); !ok {
			c.errorf(s.Pos(), "expression statement must be a call")
		} else if !t.Equal(types.VoidType) && !types.IsInvalid(t) {
			c.diags.Warnf(s.Pos(), "result of call is discarded")
		}
	case *ast.Receive:
		lt := c.lvalue(s.LHS, scope)
		if !types.IsNumeric(lt) && !types.IsInvalid(lt) {
			c.errorf(s.Pos(), "receive target must be numeric scalar, not %s", lt)
		}
	case *ast.Send:
		vt := c.expr(s.Value, scope)
		if !types.IsNumeric(vt) && !types.IsInvalid(vt) {
			c.errorf(s.Pos(), "send value must be numeric scalar, not %s", vt)
		}
	case *ast.Break:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.Continue:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	}
}

// lvalue checks an assignment/receive target and returns its type.
func (c *checker) lvalue(e ast.Expr, scope *Scope) types.Type {
	switch e := e.(type) {
	case *ast.Ident:
		obj := scope.Lookup(e.Name)
		if obj == nil {
			c.errorf(e.Pos(), "undeclared name %s", e.Name)
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		c.info.Uses[e] = obj
		if obj.Kind == FuncObj || obj.Kind == StreamObj {
			c.errorf(e.Pos(), "cannot assign to %s %s", obj.Kind, obj.Name)
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		if !types.IsScalar(obj.Type) && !types.IsInvalid(obj.Type) {
			c.errorf(e.Pos(), "assignment target must be a scalar element, not %s", obj.Type)
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		e.SetType(obj.Type)
		return obj.Type
	case *ast.IndexExpr:
		t := c.indexExpr(e, scope)
		if !types.IsScalar(t) && !types.IsInvalid(t) {
			c.errorf(e.Pos(), "assignment target must be a scalar element, not %s", t)
			return types.InvalidType
		}
		return t
	default:
		c.errorf(e.Pos(), "cannot assign to this expression")
		c.expr(e, scope)
		return types.InvalidType
	}
}

// assignable checks that a value of type src can be assigned to dst and
// inserts an implicit int→float widening conversion (rewriting *slot) when
// needed.
func (c *checker) assignable(pos source.Pos, dst, src types.Type, slot *ast.Expr, what string) {
	if types.IsInvalid(dst) || types.IsInvalid(src) {
		return
	}
	if dst.Equal(src) {
		return
	}
	if dst.Equal(types.FloatType) && src.Equal(types.IntType) {
		*slot = widen(*slot)
		return
	}
	c.errorf(pos, "%s: cannot use %s value as %s", what, src, dst)
}

// widen wraps e in an implicit float() conversion.
func widen(e ast.Expr) ast.Expr {
	call := &ast.CallExpr{
		Fun:     &ast.Ident{NamePos: e.Pos(), Name: "float"},
		Args:    []ast.Expr{e},
		Builtin: "float",
	}
	call.SetType(types.FloatType)
	return call
}

func (c *checker) wantBool(pos source.Pos, t types.Type, what string) {
	if !t.Equal(types.BoolType) && !types.IsInvalid(t) {
		c.errorf(pos, "%s must be bool, not %s", what, t)
	}
}

func (c *checker) wantInt(pos source.Pos, t types.Type, what string) {
	if !t.Equal(types.IntType) && !types.IsInvalid(t) {
		c.errorf(pos, "%s must be int, not %s", what, t)
	}
}

// blockReturns reports whether execution of b always reaches a return.
func blockReturns(b *ast.Block) bool {
	for _, s := range b.Stmts {
		if stmtReturns(s) {
			return true
		}
	}
	return false
}

func stmtReturns(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.Return:
		return true
	case *ast.Block:
		return blockReturns(s)
	case *ast.If:
		if s.Else == nil {
			return false
		}
		return blockReturns(s.Then) && stmtReturns(s.Else)
	}
	return false
}

// ---------------------------------------------------------------------------
// Expressions

func (c *checker) expr(e ast.Expr, scope *Scope) types.Type {
	switch e := e.(type) {
	case *ast.Ident:
		obj := scope.Lookup(e.Name)
		if obj == nil {
			c.errorf(e.Pos(), "undeclared name %s", e.Name)
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		c.info.Uses[e] = obj
		if obj.Kind == FuncObj {
			c.errorf(e.Pos(), "function %s used as value (missing call?)", obj.Name)
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		e.SetType(obj.Type)
		return obj.Type
	case *ast.IntLit:
		e.SetType(types.IntType)
		return types.IntType
	case *ast.FloatLit:
		e.SetType(types.FloatType)
		return types.FloatType
	case *ast.BoolLit:
		e.SetType(types.BoolType)
		return types.BoolType
	case *ast.BinaryExpr:
		return c.binaryExpr(e, scope)
	case *ast.UnaryExpr:
		xt := c.expr(e.X, scope)
		switch e.Op {
		case source.SUB:
			if !types.IsNumeric(xt) && !types.IsInvalid(xt) {
				c.errorf(e.Pos(), "operator - requires a numeric operand, not %s", xt)
				xt = types.InvalidType
			}
		case source.NOT:
			if !xt.Equal(types.BoolType) && !types.IsInvalid(xt) {
				c.errorf(e.Pos(), "operator ! requires a bool operand, not %s", xt)
				xt = types.InvalidType
			}
		}
		e.SetType(xt)
		return xt
	case *ast.CallExpr:
		return c.callExpr(e, scope)
	case *ast.IndexExpr:
		return c.indexExpr(e, scope)
	}
	return types.InvalidType
}

func (c *checker) binaryExpr(e *ast.BinaryExpr, scope *Scope) types.Type {
	xt := c.expr(e.X, scope)
	yt := c.expr(e.Y, scope)
	if types.IsInvalid(xt) || types.IsInvalid(yt) {
		e.SetType(types.InvalidType)
		return types.InvalidType
	}

	numericPair := func() types.Type {
		// Widen int operand if the other is float.
		if xt.Equal(types.FloatType) && yt.Equal(types.IntType) {
			e.Y = widen(e.Y)
			yt = types.FloatType
		}
		if yt.Equal(types.FloatType) && xt.Equal(types.IntType) {
			e.X = widen(e.X)
			xt = types.FloatType
		}
		if !types.IsNumeric(xt) || !xt.Equal(yt) {
			c.errorf(e.Pos(), "operator %s requires matching numeric operands, got %s and %s", e.Op, xt, yt)
			return types.InvalidType
		}
		return xt
	}

	switch e.Op {
	case source.ADD, source.SUB, source.MUL, source.QUO:
		t := numericPair()
		e.SetType(t)
		return t
	case source.REM:
		if !xt.Equal(types.IntType) || !yt.Equal(types.IntType) {
			c.errorf(e.Pos(), "operator %% requires int operands, got %s and %s", xt, yt)
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		e.SetType(types.IntType)
		return types.IntType
	case source.LSS, source.LEQ, source.GTR, source.GEQ:
		if t := numericPair(); types.IsInvalid(t) {
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		e.SetType(types.BoolType)
		return types.BoolType
	case source.EQL, source.NEQ:
		if xt.Equal(types.BoolType) && yt.Equal(types.BoolType) {
			e.SetType(types.BoolType)
			return types.BoolType
		}
		if t := numericPair(); types.IsInvalid(t) {
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		e.SetType(types.BoolType)
		return types.BoolType
	case source.LAND, source.LOR:
		if !xt.Equal(types.BoolType) || !yt.Equal(types.BoolType) {
			c.errorf(e.Pos(), "operator %s requires bool operands, got %s and %s", e.Op, xt, yt)
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		e.SetType(types.BoolType)
		return types.BoolType
	}
	c.errorf(e.Pos(), "unknown binary operator %s", e.Op)
	e.SetType(types.InvalidType)
	return types.InvalidType
}

// builtinSig describes one builtin function.
type builtinSig struct {
	arity int
	check func(c *checker, e *ast.CallExpr, args []types.Type) types.Type
}

var builtins = map[string]builtinSig{
	"sqrt": {1, func(c *checker, e *ast.CallExpr, a []types.Type) types.Type {
		if a[0].Equal(types.IntType) {
			e.Args[0] = widen(e.Args[0])
			a[0] = types.FloatType
		}
		if !a[0].Equal(types.FloatType) {
			c.errorf(e.Pos(), "sqrt requires a float argument, not %s", a[0])
			return types.InvalidType
		}
		return types.FloatType
	}},
	"abs": {1, func(c *checker, e *ast.CallExpr, a []types.Type) types.Type {
		if !types.IsNumeric(a[0]) {
			c.errorf(e.Pos(), "abs requires a numeric argument, not %s", a[0])
			return types.InvalidType
		}
		return a[0]
	}},
	"min": {2, checkMinMax},
	"max": {2, checkMinMax},
	"float": {1, func(c *checker, e *ast.CallExpr, a []types.Type) types.Type {
		if !types.IsNumeric(a[0]) {
			c.errorf(e.Pos(), "float() requires a numeric argument, not %s", a[0])
			return types.InvalidType
		}
		return types.FloatType
	}},
	"int": {1, func(c *checker, e *ast.CallExpr, a []types.Type) types.Type {
		if !types.IsNumeric(a[0]) {
			c.errorf(e.Pos(), "int() requires a numeric argument, not %s", a[0])
			return types.InvalidType
		}
		return types.IntType
	}},
}

func checkMinMax(c *checker, e *ast.CallExpr, a []types.Type) types.Type {
	x, y := a[0], a[1]
	if x.Equal(types.FloatType) && y.Equal(types.IntType) {
		e.Args[1] = widen(e.Args[1])
		y = types.FloatType
	}
	if y.Equal(types.FloatType) && x.Equal(types.IntType) {
		e.Args[0] = widen(e.Args[0])
		x = types.FloatType
	}
	if !types.IsNumeric(x) || !x.Equal(y) {
		c.errorf(e.Pos(), "%s requires matching numeric arguments, got %s and %s", e.Fun.Name, x, y)
		return types.InvalidType
	}
	return x
}

func (c *checker) callExpr(e *ast.CallExpr, scope *Scope) types.Type {
	argTypes := make([]types.Type, len(e.Args))
	for i, a := range e.Args {
		argTypes[i] = c.expr(a, scope)
	}
	for _, at := range argTypes {
		if types.IsInvalid(at) {
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
	}

	// Builtins take precedence and cannot be shadowed (they are not
	// declarable names in any scope).
	if b, ok := builtins[e.Fun.Name]; ok {
		e.Builtin = e.Fun.Name
		if len(e.Args) != b.arity {
			c.errorf(e.Pos(), "%s expects %d argument(s), got %d", e.Fun.Name, b.arity, len(e.Args))
			e.SetType(types.InvalidType)
			return types.InvalidType
		}
		t := b.check(c, e, argTypes)
		e.SetType(t)
		return t
	}

	obj := scope.Lookup(e.Fun.Name)
	if obj == nil {
		c.errorf(e.Pos(), "call of undeclared function %s", e.Fun.Name)
		e.SetType(types.InvalidType)
		return types.InvalidType
	}
	c.info.Uses[e.Fun] = obj
	if obj.Kind != FuncObj {
		c.errorf(e.Pos(), "%s %s is not a function", obj.Kind, obj.Name)
		e.SetType(types.InvalidType)
		return types.InvalidType
	}
	sig := obj.Type.(*types.Func)
	if len(e.Args) != len(sig.Params) {
		c.errorf(e.Pos(), "function %s expects %d argument(s), got %d", obj.Name, len(sig.Params), len(e.Args))
		e.SetType(sig.Result)
		return sig.Result
	}
	for i, pt := range sig.Params {
		c.assignable(e.Args[i].Pos(), pt, argTypes[i], &e.Args[i], "argument")
	}
	e.SetType(sig.Result)
	return sig.Result
}

func (c *checker) indexExpr(e *ast.IndexExpr, scope *Scope) types.Type {
	xt := c.expr(e.X, scope)
	it := c.expr(e.Index, scope)
	c.wantInt(e.Index.Pos(), it, "array index")
	if types.IsInvalid(xt) {
		e.SetType(types.InvalidType)
		return types.InvalidType
	}
	arr, ok := xt.(*types.Array)
	if !ok {
		c.errorf(e.Pos(), "indexing a non-array value of type %s", xt)
		e.SetType(types.InvalidType)
		return types.InvalidType
	}
	if lit, ok := e.Index.(*ast.IntLit); ok && (lit.Value < 0 || lit.Value >= int64(arr.Len)) {
		c.errorf(e.Index.Pos(), "constant index %d out of range [0, %d)", lit.Value, arr.Len)
	}
	e.SetType(arr.Elem)
	return arr.Elem
}

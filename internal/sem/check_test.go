package sem

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/types"
)

func checkSrc(t *testing.T, src string) (*ast.Module, *Info, *source.DiagBag) {
	t.Helper()
	var bag source.DiagBag
	m := parser.Parse("t.w2", []byte(src), &bag)
	if bag.HasErrors() {
		t.Fatalf("parse errors:\n%s", bag.String())
	}
	info := Check(m, &bag)
	return m, info, &bag
}

func mustCheck(t *testing.T, src string) (*ast.Module, *Info) {
	t.Helper()
	m, info, bag := checkSrc(t, src)
	if bag.HasErrors() {
		t.Fatalf("unexpected check errors:\n%s", bag.String())
	}
	return m, info
}

func wrap(body string) string {
	return "module m\nsection 1 {\n" + body + "\n}\n"
}

func TestCheckWellTypedModule(t *testing.T) {
	src := `
module ok (in xs: float[64], out ys: float[64])
section 1 of 1 {
    function helper(a: float, b: float): float {
        return a * b + 1.0;
    }
    function cell() {
        var i: int;
        var buf: float[8];
        var v: float;
        for i = 0 to 63 {
            receive(X, v);
            buf[i % 8] = helper(v, 2.0);
            send(Y, buf[i % 8] + float(i));
        }
    }
}
`
	m, info := mustCheck(t, src)
	helper := m.Sections[0].Funcs[0]
	if helper.Sig == nil || !helper.Sig.Result.Equal(types.FloatType) || len(helper.Sig.Params) != 2 {
		t.Errorf("helper signature wrong: %v", helper.Sig)
	}
	if len(info.Locals[m.Sections[0].Funcs[1]]) != 3 {
		t.Errorf("cell should have 3 locals, got %d", len(info.Locals[m.Sections[0].Funcs[1]]))
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ name, body, wantSub string }{
		{"undeclared", `function f() { x = 1; }`, "undeclared name x"},
		{"redeclared var", `function f() { var x: int; var x: float; }`, "redeclared"},
		{"assign type mismatch", `function f() { var x: int; x = 1.5; }`, "cannot use float"},
		{"bool arith", `function f() { var b: bool; b = true + false; }`, "numeric operands"},
		{"mod float", `function f() { var x: float; x = 1.0 % 2.0; }`, "int operands"},
		{"if cond not bool", `function f() { if 1 { return; } }`, "must be bool"},
		{"while cond not bool", `function f() { while 1.5 { return; } }`, "must be bool"},
		{"loop var float", `function f() { var x: float; for x = 0 to 3 { return; } }`, "must have type int"},
		{"loop bound float", `function f() { var i: int; for i = 0 to 2.5 { return; } }`, "must be int"},
		{"zero step", `function f() { var i: int; for i = 0 to 9 step 0 { return; } }`, "must not be zero"},
		{"break outside loop", `function f() { break; }`, "break outside loop"},
		{"continue outside loop", `function f() { continue; }`, "continue outside loop"},
		{"missing return", `function f(): int { var x: int; x = 1; }`, "missing return"},
		{"return value in void fn", `function f() { return 3; }`, "unexpected return value"},
		{"missing return value", `function f(): int { return; }`, "missing return value"},
		{"call undeclared", `function f() { g(); }`, "undeclared function g"},
		{"recursive call", `function f() { f(); }`, "undeclared function f"},
		{"arity", `function g(a: int): int { return a; } function f() { var x: int; x = g(1, 2); }`, "expects 1 argument"},
		{"arg type", `function g(a: bool): bool { return a; } function f() { var x: bool; x = g(3); }`, "cannot use int"},
		{"array param", `function f(a: int[4]) { return; }`, "non-scalar"},
		{"array result", `function f(): int[4] { return; }`, "non-scalar"},
		{"index non-array", `function f() { var x: int; x = x[0]; }`, "non-array"},
		{"index not int", `function f() { var a: int[4]; var x: int; x = a[1.5]; }`, "must be int"},
		{"const index oob", `function f() { var a: int[4]; var x: int; x = a[4]; }`, "out of range"},
		{"assign to function", `function g() { return; } function f() { g = 1; }`, "cannot assign to function"},
		{"assign whole array", `function f() { var a: int[2]; var b: int[2]; a = b; }`, "scalar element"},
		{"func as value", `function g() { return; } function f() { var x: int; x = g; }`, "used as value"},
		{"receive bool", `function f() { var b: bool; receive(X, b); }`, "numeric scalar"},
		{"send bool", `function f() { send(Y, true); }`, "numeric scalar"},
		{"not on int", `function f() { var b: bool; b = !3; }`, "requires a bool operand"},
		{"neg on bool", `function f() { var b: bool; b = -true; }`, "requires a numeric operand"},
		{"sqrt on bool", `function f() { var x: float; x = sqrt(true); }`, "float argument"},
		{"exprstmt non-call", `function f() { var x: int; x + 1; }`, "must be a call"},
		{"bad section of", ``, ""}, // placeholder replaced below
	}
	for _, c := range cases {
		if c.name == "bad section of" {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			_, _, bag := checkSrc(t, wrap(c.body))
			if !bag.HasErrors() {
				t.Fatalf("expected errors, got none")
			}
			if !strings.Contains(bag.String(), c.wantSub) {
				t.Errorf("diagnostics:\n%s\ndo not mention %q", bag.String(), c.wantSub)
			}
		})
	}
}

func TestCheckSectionOfMismatch(t *testing.T) {
	src := `
module m
section 1 of 3 {
    function f() { return; }
}
section 2 of 3 {
    function g() { return; }
}
`
	_, _, bag := checkSrc(t, src)
	if !strings.Contains(bag.String(), "module has 2 sections") {
		t.Errorf("expected section-count mismatch, got:\n%s", bag.String())
	}
}

func TestCheckDuplicateSection(t *testing.T) {
	src := `
module m
section 1 { function f() { return; } }
section 1 { function g() { return; } }
`
	_, _, bag := checkSrc(t, src)
	if !strings.Contains(bag.String(), "section 1 redeclared") {
		t.Errorf("expected duplicate-section error, got:\n%s", bag.String())
	}
}

func TestCrossSectionCallRejected(t *testing.T) {
	src := `
module m
section 1 { function f(): int { return 1; } }
section 2 { function g(): int { return f(); } }
`
	_, _, bag := checkSrc(t, src)
	if !strings.Contains(bag.String(), "undeclared function f") {
		t.Errorf("cross-section call should be rejected, got:\n%s", bag.String())
	}
}

func TestForwardCallRejected(t *testing.T) {
	src := wrap(`
function f(): int { return g(); }
function g(): int { return 1; }
`)
	_, _, bag := checkSrc(t, src)
	if !strings.Contains(bag.String(), "undeclared function g") {
		t.Errorf("forward call should be rejected, got:\n%s", bag.String())
	}
}

func TestImplicitWidening(t *testing.T) {
	src := wrap(`
function f() {
    var x: float;
    var i: int;
    x = 3;
    x = x + i;
    x = i * x;
    x = min(i, x);
}
`)
	m, _ := mustCheck(t, src)
	// Every int leaf feeding a float context must now sit under a float()
	// conversion; verify by counting inserted builtins.
	widenCount := 0
	ast.Inspect(m, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && c.Builtin == "float" {
			widenCount++
		}
		return true
	})
	if widenCount != 4 {
		t.Errorf("expected 4 implicit widenings, found %d", widenCount)
	}
}

func TestExprTypesAnnotated(t *testing.T) {
	src := wrap(`
function f(a: float): float {
    var i: int;
    var arr: float[4];
    arr[i] = a * 2.0;
    return arr[0];
}
`)
	m, _ := mustCheck(t, src)
	ast.Inspect(m, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if e.Type() == nil {
				t.Errorf("expression %s at %s has no type", ast.ExprString(e), e.Pos())
			}
		}
		return true
	})
}

func TestMultiDimArrays(t *testing.T) {
	src := wrap(`
function f(): float {
    var g: float[3][4];
    var i: int;
    var j: int;
    for i = 0 to 2 {
        for j = 0 to 3 {
            g[i][j] = float(i * j);
        }
    }
    return g[2][3];
}
`)
	m, _ := mustCheck(t, src)
	var decl *ast.VarDecl
	ast.Inspect(m, func(n ast.Node) bool {
		if v, ok := n.(*ast.VarDecl); ok && v.Name == "g" {
			decl = v
		}
		return true
	})
	if decl == nil {
		t.Fatal("declaration of g not found")
	}
	at, ok := decl.Type.T.(*types.Array)
	if !ok || at.Len != 3 || at.TotalLen() != 12 || !at.ScalarElem().Equal(types.FloatType) {
		t.Errorf("type of g = %v, want float[3][4]", decl.Type.T)
	}
	if at.String() != "float[3][4]" {
		t.Errorf("String() = %q, want float[3][4]", at.String())
	}
}

func TestPartialIndexYieldsArray(t *testing.T) {
	// g[i] on float[3][4] has type float[4]; assigning it must fail but
	// reading an element through it must work.
	src := wrap(`
function f(): float {
    var g: float[3][4];
    return g[1][2];
}
`)
	mustCheck(t, src)

	bad := wrap(`
function f() {
    var g: float[3][4];
    var h: float[4];
    g[1] = h;
}
`)
	_, _, bag := checkSrc(t, bad)
	if !bag.HasErrors() {
		t.Error("assigning a whole sub-array should be rejected")
	}
}

func TestReturnPathAnalysis(t *testing.T) {
	good := wrap(`
function f(x: int): int {
    if x > 0 {
        return 1;
    } else {
        return 0;
    }
}
`)
	mustCheck(t, good)

	bad := wrap(`
function f(x: int): int {
    if x > 0 {
        return 1;
    }
}
`)
	_, _, bag := checkSrc(t, bad)
	if !strings.Contains(bag.String(), "missing return") {
		t.Errorf("expected missing-return error, got:\n%s", bag.String())
	}

	// A loop does not guarantee a return.
	loop := wrap(`
function f(x: int): int {
    var i: int;
    for i = 0 to x {
        return i;
    }
}
`)
	_, _, bag2 := checkSrc(t, loop)
	if !strings.Contains(bag2.String(), "missing return") {
		t.Errorf("loop body return must not satisfy all-paths analysis:\n%s", bag2.String())
	}
}

func TestBuiltinsTyped(t *testing.T) {
	src := wrap(`
function f(): float {
    var i: int;
    var x: float;
    i = abs(-3);
    x = abs(-3.5);
    i = min(1, 2);
    x = max(1.5, 2.5);
    i = int(3.7);
    x = float(7);
    x = sqrt(2.0);
    x = sqrt(2);
    return x;
}
`)
	mustCheck(t, src)
}

func TestScopeShadowing(t *testing.T) {
	src := wrap(`
function f(): int {
    var x: int = 1;
    {
        var x: float = 2.0;
        x = x + 1.0;
    }
    return x;
}
`)
	mustCheck(t, src)
}

func TestScopeInsertLookup(t *testing.T) {
	outer := NewScope(nil)
	inner := NewScope(outer)
	a := &Object{Name: "a", Kind: VarObj, Type: types.IntType}
	if outer.Insert(a) != nil {
		t.Fatal("first insert must succeed")
	}
	if prev := outer.Insert(&Object{Name: "a"}); prev != a {
		t.Error("duplicate insert must return the original")
	}
	if inner.Lookup("a") != a {
		t.Error("inner scope must see outer names")
	}
	if inner.LookupLocal("a") != nil {
		t.Error("LookupLocal must not see outer names")
	}
	b := &Object{Name: "a", Kind: VarObj, Type: types.FloatType}
	inner.Insert(b)
	if inner.Lookup("a") != b {
		t.Error("inner declaration must shadow outer")
	}
	if got := outer.Objects(); len(got) != 1 || got[0] != a {
		t.Error("Objects() must list declaration order")
	}
}

// Package sem implements phase 1's semantic analysis for W2: name
// resolution, type checking, and the structural rules that make each
// function an independently compilable unit (scalar-only signatures, calls
// restricted to previously declared functions of the same section).
//
// Like the paper's compiler, all semantic errors are found here, before any
// parallel work is forked; the master aborts the compilation if the checker
// reports errors.
package sem

import (
	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/types"
)

// ObjKind classifies a declared entity.
type ObjKind int

const (
	// VarObj is a local variable.
	VarObj ObjKind = iota
	// ParamObj is a function parameter.
	ParamObj
	// FuncObj is a function of a section.
	FuncObj
	// StreamObj is a module-level stream.
	StreamObj
)

func (k ObjKind) String() string {
	switch k {
	case VarObj:
		return "variable"
	case ParamObj:
		return "parameter"
	case FuncObj:
		return "function"
	case StreamObj:
		return "stream"
	}
	return "object"
}

// Object is a declared entity: variable, parameter, function, or stream.
type Object struct {
	Name string
	Kind ObjKind
	Type types.Type
	Pos  source.Pos
	// Decl is the declaring node: *ast.VarDecl, *ast.Param, *ast.FuncDecl,
	// or *ast.StreamParam.
	Decl ast.Node
}

// Scope is a lexical scope mapping names to objects.
type Scope struct {
	parent *Scope
	objs   map[string]*Object
	// order preserves declaration order for deterministic iteration.
	order []*Object
}

// NewScope returns a scope nested in parent (parent may be nil).
func NewScope(parent *Scope) *Scope {
	return &Scope{parent: parent, objs: make(map[string]*Object)}
}

// Insert declares obj in s. It returns the previous object with the same
// name in this scope (not outer scopes) if any, in which case obj is NOT
// inserted.
func (s *Scope) Insert(obj *Object) *Object {
	if prev, ok := s.objs[obj.Name]; ok {
		return prev
	}
	s.objs[obj.Name] = obj
	s.order = append(s.order, obj)
	return nil
}

// Lookup finds name in s or any enclosing scope.
func (s *Scope) Lookup(name string) *Object {
	for sc := s; sc != nil; sc = sc.parent {
		if obj, ok := sc.objs[name]; ok {
			return obj
		}
	}
	return nil
}

// LookupLocal finds name in s only.
func (s *Scope) LookupLocal(name string) *Object {
	return s.objs[name]
}

// Objects returns the objects declared directly in s, in declaration order.
func (s *Scope) Objects() []*Object {
	out := make([]*Object, len(s.order))
	copy(out, s.order)
	return out
}

package sem_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/wgen"
)

// semSources is the parity corpus: clean wgen modules plus hand-written
// error-laden sources covering every emission-order collision — signature
// vs body errors on a parameter, missing-return vs redeclaration at the
// function keyword, duplicates across sections and streams.
func semSources() map[string][]byte {
	return map[string][]byte{
		"small": wgen.SmallFuncsProgram(10),
		"mixed": wgen.MixedProgram(6),
		"wide":  wgen.WideProgram(12, 3),
		"user":  wgen.UserProgram(),
		"redecl": []byte(`module t
section 1 {
	function f(a: int): int { return a; }
	function f(a: int): int { return a + 1; }
	function g(): int { return f(2); }
}
`),
		"missing_return_and_redecl": []byte(`module t
section 1 {
	function f(): int { var x: int = 1; x = 2; }
	function f(): int { return 3; }
	function g(): int { return f(); }
}
`),
		"param_sig_and_body": []byte(`module t (out ys: float[1])
section 1 {
	function f(a: float[2], a: int): int { return a; }
	function g(): int { return 1; }
}
`),
		"type_errors": []byte(`module t
section 1 {
	function f(x: int): int {
		var b: bool = x;
		var y: float = 1.5;
		while x { y = y + true; }
		return z;
	}
	function g(): int { return f(1, 2); }
}
`),
		"call_order": []byte(`module t
section 1 {
	function a(): int { return b(); }
	function b(): int { return 1; }
	function c(): int { return a() + b(); }
}
`),
		"dup_streams_sections": []byte(`module t (out ys: float[1], out ys: float[2])
section 1 of 3 {
	function f(): int { return 1; }
}
section 1 {
	function g(): int { return 2; }
}
`),
	}
}

func parseFor(t *testing.T, src []byte) *ast.Module {
	t.Helper()
	var bag source.DiagBag
	m := parser.Parse("m.w2", src, &bag)
	if m == nil {
		t.Fatalf("no module: %s", bag.String())
	}
	return m
}

// localNames summarizes Info.Locals keyed by the function's locator so that
// infos from two different parses of the same source can be compared.
func localNames(info *sem.Info) map[string][]string {
	out := make(map[string][]string)
	for fn, objs := range info.Locals {
		key := fmt.Sprintf("s%d.f%d", fn.SectionIndex, fn.FuncIndex)
		var names []string
		for _, o := range objs {
			names = append(names, o.Name)
		}
		out[key] = names
	}
	return out
}

// TestCheckParallelParity checks that CheckParallel's diagnostics and Info
// match Check's exactly across the corpus and worker counts. Each checker
// runs on its own parse of the source: checking mutates the tree (implicit
// widening conversions, resolved types), so sharing one tree would not
// compare two independent runs.
func TestCheckParallelParity(t *testing.T) {
	for name, src := range semSources() {
		for _, workers := range []int{1, 2, 4, 8} {
			seqMod := parseFor(t, src)
			var seqBag source.DiagBag
			seqInfo := sem.Check(seqMod, &seqBag)

			parMod := parseFor(t, src)
			var parBag source.DiagBag
			parInfo, err := sem.CheckParallel(context.Background(), parMod, &parBag, workers)
			if err != nil {
				t.Fatalf("%s/w%d: unexpected error: %v", name, workers, err)
			}

			if got, want := parBag.String(), seqBag.String(); got != want {
				t.Errorf("%s/w%d: diagnostics differ:\n got: %q\nwant: %q", name, workers, got, want)
			}
			if got, want := parBag.ErrorCount(), seqBag.ErrorCount(); got != want {
				t.Errorf("%s/w%d: error count %d, want %d", name, workers, got, want)
			}
			if got, want := len(parInfo.FuncObjs), len(seqInfo.FuncObjs); got != want {
				t.Errorf("%s/w%d: %d func objects, want %d", name, workers, got, want)
			}
			if got, want := len(parInfo.Uses), len(seqInfo.Uses); got != want {
				t.Errorf("%s/w%d: %d uses, want %d", name, workers, got, want)
			}
			gotLocals, wantLocals := localNames(parInfo), localNames(seqInfo)
			if len(gotLocals) != len(wantLocals) {
				t.Errorf("%s/w%d: locals for %d functions, want %d", name, workers, len(gotLocals), len(wantLocals))
			}
			for key, want := range wantLocals {
				got := gotLocals[key]
				if len(got) != len(want) {
					t.Errorf("%s/w%d: %s has locals %v, want %v", name, workers, key, got, want)
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s/w%d: %s local %d = %s, want %s", name, workers, key, i, got[i], want[i])
					}
				}
			}
			// The checked trees must print identically (widening rewrites
			// applied the same way).
			if got, want := ast.Format(parMod), ast.Format(seqMod); got != want {
				t.Errorf("%s/w%d: checked trees differ", name, workers)
			}
		}
	}
}

// TestCheckParallelCancel checks prompt, leak-free exit on cancellation.
func TestCheckParallelCancel(t *testing.T) {
	m := parseFor(t, wgen.WideProgram(48, 3))
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var bag source.DiagBag
	info, err := sem.CheckParallel(ctx, m, &bag, 4)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if info != nil {
		t.Fatal("cancelled check returned an Info")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

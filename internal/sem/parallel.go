// Concurrent semantic checking.
//
// Check's work splits cleanly in two. Pass A — streams, section headers,
// function signatures, and name insertion — is inherently sequential (later
// declarations see earlier ones) but cheap: it never looks inside a body.
// Pass B — checking each function body — is the bulk of the walk and is
// independent per function once pass A has pinned down what every body can
// see. CheckParallel runs pass A on the calling goroutine, then fans the
// bodies out to a bounded worker group, each checking against a read-only
// scope chain with a private Info and diagnostic bag, and merges the results
// in declaration order so the output is word-identical to Check's.
//
// The scope a body sees is a per-function flat snapshot instead of Check's
// single mutable section scope: body i checks against scope_i, a fresh child
// of the module scope holding functions 0..i-1 under the flat scope's
// keep-first semantics (a duplicate name never displaces the first
// declaration). Every lookup therefore resolves to exactly the object the
// sequential checker would find, each scope_i is immutable by the time any
// worker reads it, and — unlike a chain of single-entry scopes — lookup cost
// does not grow with the function's position in the section.
package sem

import (
	"context"
	"sync"

	"repro/internal/ast"
	"repro/internal/source"
)

// CheckFuncBody checks one function body against scope (the names visible to
// it: module streams plus the functions declared before it in its section).
// fn.Sig must already be set (by the signature pass). The walk records into
// info and diags only, so concurrent calls on distinct functions are safe as
// long as each call gets its own info and diags and the scope chain is no
// longer mutated.
func CheckFuncBody(fn *ast.FuncDecl, scope *Scope, info *Info, diags *source.DiagBag) {
	c := &checker{diags: diags, info: info}
	c.funcBody(fn, scope)
}

// checkUnit is one function body scheduled for pass B, with the merge-order
// bags pass A prepared for it.
type checkUnit struct {
	fn    *ast.FuncDecl
	scope *Scope // read-only after pass A

	bodyBag   *source.DiagBag // filled by the worker
	redeclBag *source.DiagBag // filled by pass A (redeclaration at fn.Pos)
	info      *Info           // filled by the worker
}

// CheckParallel type-checks the module like Check but runs function bodies
// concurrently on at most `workers` goroutines. The returned Info and the
// diagnostics appended to diags are identical to Check's — diagnostics are
// recorded into private per-function bags and merged in declaration order,
// never completion order, so equal-position messages keep the sequential
// emission order. The error is non-nil only when ctx was cancelled; all
// worker goroutines have exited by the time CheckParallel returns, and no
// partial Info escapes.
func CheckParallel(ctx context.Context, m *ast.Module, diags *source.DiagBag, workers int) (*Info, error) {
	if workers < 1 {
		workers = 1
	}
	info := &Info{
		Uses:     make(map[*ast.Ident]*Object),
		FuncObjs: make(map[*ast.FuncDecl]*Object),
		Locals:   make(map[*ast.FuncDecl][]*Object),
	}
	headBag := &source.DiagBag{}
	hc := &checker{diags: headBag, info: info}

	// Pass A: module scope, section checks, signatures, and the per-body
	// scope chain. Mirrors checker.module/section minus funcBody.
	moduleScope := NewScope(nil)
	for _, sp := range m.Streams {
		t := hc.resolveType(sp.Type)
		obj := &Object{Name: sp.Name, Kind: StreamObj, Type: t, Pos: sp.Pos(), Decl: sp}
		if prev := moduleScope.Insert(obj); prev != nil {
			hc.errorf(sp.Pos(), "stream %s redeclared (previous declaration at %s)", sp.Name, prev.Pos)
		}
	}

	var units []*checkUnit
	seenSection := make(map[int]source.Pos)
	for _, sec := range m.Sections {
		if pos, dup := seenSection[sec.Index]; dup {
			hc.errorf(sec.Pos(), "section %d redeclared (previous declaration at %s)", sec.Index, pos)
		}
		seenSection[sec.Index] = sec.Pos()
		if sec.Of != 0 && sec.Of != len(m.Sections) {
			hc.errorf(sec.Pos(), "section %d declares \"of %d\" but module has %d sections",
				sec.Index, sec.Of, len(m.Sections))
		}

		var visible []*Object // keep-first, in declaration order
		first := make(map[string]*Object)
		for _, fn := range sec.Funcs {
			fn.Sig = hc.signature(fn)
			obj := &Object{Name: fn.Name, Kind: FuncObj, Type: fn.Sig, Pos: fn.Pos(), Decl: fn}
			info.FuncObjs[fn] = obj
			snap := NewScope(moduleScope)
			for _, o := range visible {
				snap.Insert(o)
			}
			u := &checkUnit{fn: fn, scope: snap, bodyBag: &source.DiagBag{}, redeclBag: &source.DiagBag{}}
			units = append(units, u)
			if prev, dup := first[fn.Name]; dup {
				u.redeclBag.Errorf(fn.Pos(), "function %s redeclared in section %d (previous declaration at %s)",
					fn.Name, sec.Index, prev.Pos)
			} else {
				first[fn.Name] = obj
				visible = append(visible, obj)
			}
		}
	}

	// Pass B: bounded fan-out over the bodies. Workers start only after pass
	// A is complete, so every scope in the chain — and every fn.Sig — is
	// immutable from here on.
	nw := workers
	if nw > len(units) {
		nw = len(units)
	}
	jobCh := make(chan *checkUnit)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobCh {
				pinfo := &Info{
					Uses:     make(map[*ast.Ident]*Object),
					FuncObjs: make(map[*ast.FuncDecl]*Object),
					Locals:   make(map[*ast.FuncDecl][]*Object),
				}
				CheckFuncBody(u.fn, u.scope, pinfo, u.bodyBag)
				u.info = pinfo
			}
		}()
	}
	feed := func() error {
		defer close(jobCh)
		for _, u := range units {
			select {
			case jobCh <- u:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	err := feed()
	wg.Wait()
	if err != nil {
		return nil, err
	}

	// Merge in declaration order. Equal-position pairs all occur within one
	// function, where the sequential emission order is signature (headBag),
	// then body — parameter redeclarations and the missing-return at fn.Pos
	// — then the redeclaration of the function itself, also at fn.Pos.
	diags.Merge(headBag)
	for _, u := range units {
		diags.MergeOrdered(u.bodyBag, u.redeclBag)
		for id, obj := range u.info.Uses {
			info.Uses[id] = obj
		}
		for fn, locals := range u.info.Locals {
			info.Locals[fn] = locals
		}
	}
	return info, nil
}

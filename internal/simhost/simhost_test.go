package simhost

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/wgen"
)

func pm() costmodel.Params { return costmodel.Default1989() }

func outline(t *testing.T, src []byte) *parser.Outline {
	t.Helper()
	var bag source.DiagBag
	o := parser.ParseOutline("t.w2", src, &bag)
	if o == nil || bag.HasErrors() {
		t.Fatal(bag.String())
	}
	return o
}

func TestSequentialScalesWithWork(t *testing.T) {
	o1 := outline(t, wgen.SyntheticProgram(wgen.Small, 1))
	o4 := outline(t, wgen.SyntheticProgram(wgen.Small, 4))
	t1 := SimulateSequential(o1, pm())
	t4 := SimulateSequential(o4, pm())
	if t4.Elapsed <= t1.Elapsed*2 {
		t.Errorf("4 functions (%.0fs) should take much longer than 1 (%.0fs)", t4.Elapsed, t1.Elapsed)
	}
	if t1.CPU <= 0 || t1.CPU > t1.Elapsed {
		t.Errorf("CPU (%.0f) must be positive and <= elapsed (%.0f)", t1.CPU, t1.Elapsed)
	}
}

func TestParallelUsesWorkers(t *testing.T) {
	o := outline(t, wgen.SyntheticProgram(wgen.Large, 8))
	p1 := SimulateParallel(o, pm(), 1, FCFS)
	p4 := SimulateParallel(o, pm(), 4, FCFS)
	p8 := SimulateParallel(o, pm(), 8, FCFS)
	if !(p8.Elapsed < p4.Elapsed && p4.Elapsed < p1.Elapsed) {
		t.Errorf("elapsed should fall with workers: %.0f %.0f %.0f", p1.Elapsed, p4.Elapsed, p8.Elapsed)
	}
	if len(p8.FuncCPU) != 8 {
		t.Errorf("expected 8 function masters, got %d", len(p8.FuncCPU))
	}
	if p8.MaxProcCPU <= 0 {
		t.Error("per-processor CPU must be populated")
	}
	// With one worker, function masters queue: waiting time must appear.
	if p1.WaitSec <= 0 {
		t.Error("single-worker run must record workstation waiting")
	}
}

func TestEightTasksOnFifteenStationsDontWait(t *testing.T) {
	o := outline(t, wgen.SyntheticProgram(wgen.Medium, 8))
	p := SimulateParallel(o, pm(), 15, FCFS)
	if p.WaitSec != 0 {
		t.Errorf("8 masters on 15 stations should never wait, got %.1fs", p.WaitSec)
	}
}

func TestDownloadContentionGrowsWithMasters(t *testing.T) {
	o2 := outline(t, wgen.SyntheticProgram(wgen.Small, 2))
	o8 := outline(t, wgen.SyntheticProgram(wgen.Small, 8))
	p2 := SimulateParallel(o2, pm(), 15, FCFS)
	p8 := SimulateParallel(o8, pm(), 15, FCFS)
	if p8.DownloadSec/8 <= p2.DownloadSec/2 {
		t.Errorf("per-master download time should grow with contention: %.1f vs %.1f",
			p8.DownloadSec/8, p2.DownloadSec/2)
	}
}

func TestSequentialSwapsOnBigPrograms(t *testing.T) {
	small := outline(t, wgen.SyntheticProgram(wgen.Tiny, 2))
	big := outline(t, wgen.SyntheticProgram(wgen.Large, 8))
	if s := SimulateSequential(small, pm()); s.SwapSec != 0 {
		t.Errorf("tiny program should not page, got %.1fs swap", s.SwapSec)
	}
	if b := SimulateSequential(big, pm()); b.SwapSec <= 0 {
		t.Error("8 x f_large must page on a single workstation")
	}
}

func TestParallelPiecesFitWhereSequentialSwaps(t *testing.T) {
	// The negative-system-overhead mechanism: per-function masters of a
	// medium program do not page while the sequential run does.
	o := outline(t, wgen.SyntheticProgram(wgen.Medium, 4))
	seq := SimulateSequential(o, pm())
	par := SimulateParallel(o, pm(), 15, FCFS)
	if seq.SwapSec <= 0 {
		t.Error("sequential 4 x f_medium should page")
	}
	if par.SwapSec > 0 {
		t.Errorf("parallel medium masters should fit in memory, got %.1fs swap", par.SwapSec)
	}
}

func TestGroupedReducesStartups(t *testing.T) {
	o := outline(t, wgen.UserProgram())
	fcfs := SimulateParallel(o, pm(), 3, FCFS)
	grouped := SimulateParallel(o, pm(), 3, Grouped)
	// Grouping shares Lisp processes: fewer startups.
	if grouped.StartupSec >= fcfs.StartupSec {
		t.Errorf("grouped startup total (%.0fs) should be below FCFS (%.0fs)",
			grouped.StartupSec, fcfs.StartupSec)
	}
}

func TestImplOverheadComponents(t *testing.T) {
	o := outline(t, wgen.SyntheticProgram(wgen.Small, 4))
	p := SimulateParallel(o, pm(), 15, FCFS)
	if p.SetupSec <= 0 || p.SchedSec <= 0 || p.SectionSec <= 0 {
		t.Errorf("implementation overhead components must be positive: %+v", p)
	}
	if p.ImplOverhead() != p.SetupSec+p.SchedSec+p.SectionSec {
		t.Error("ImplOverhead must sum its components")
	}
	if p.ImplOverhead() >= p.Elapsed {
		t.Error("implementation overhead cannot exceed elapsed time")
	}
}

func TestCostModelAnchors(t *testing.T) {
	// §4.3 anchors: ~300-line functions compile in 19-22 minutes, 5-45-line
	// ones in 2-6 minutes (sequential, plus per-function attribution).
	P := pm()
	large := P.CompileSec(300, 3)
	if large < 15*60 || large > 25*60 {
		t.Errorf("300-line compile = %.0fs, want roughly 19-22 minutes", large)
	}
	small := P.CompileSec(25, 1)
	if small < 60 || small > 6*60 {
		t.Errorf("25-line compile = %.0fs, want roughly 2-6 minutes", small)
	}
	// §3.4: parsing is <5% of sequential compilation.
	parse := P.ParseSec(300)
	if parse > large/20 {
		t.Errorf("parse (%.0fs) exceeds 5%% of compile (%.0fs)", parse, large)
	}
	// Assembly is short compared to code generation.
	if asmT := P.AsmSec(300); asmT > large/10 {
		t.Errorf("assembly (%.0fs) should be short vs compile (%.0fs)", asmT, large)
	}
}

func TestMemoryPressureCapped(t *testing.T) {
	P := pm()
	if P.MemoryPressure(P.NodeMemMB) != 0 {
		t.Error("fitting working set must have zero pressure")
	}
	if pr := P.MemoryPressure(P.NodeMemMB * 10); pr != P.MaxPressure {
		t.Errorf("pressure must cap at %.2f, got %.2f", P.MaxPressure, pr)
	}
	if pr := P.MemoryPressure(P.NodeMemMB + 1); pr <= 0 || pr > P.MaxPressure {
		t.Errorf("mild pressure out of range: %g", pr)
	}
}

func TestDepthFactorAffectsCost(t *testing.T) {
	P := pm()
	if P.CompileSec(100, 3) <= P.CompileSec(100, 1) {
		t.Error("deeper nesting must cost more compile time")
	}
	if P.WorkingSetMB(100, 800, 0) <= P.WorkingSetMB(100, 100, 0) {
		t.Error("bigger module context must enlarge the working set")
	}
}

// Package simhost simulates the paper's host system — a network of diskless
// SUN workstations sharing one Ethernet segment and one file server — and
// runs the sequential and parallel compiler process structures on it in
// virtual time.
//
// The real Go compiler (internal/compiler, internal/core) proves the
// parallel decomposition correct; this simulation reproduces the paper's
// *timing* behaviour, which a modern machine cannot exhibit natively:
// minutes-scale compiles, Lisp core-image downloads, garbage collection,
// and paging of over-large working sets to the file server. All costs come
// from one calibrated parameter set (internal/costmodel).
package simhost

import (
	"repro/internal/costmodel"
	"repro/internal/des"
	"repro/internal/parser"
	"repro/internal/sched"
)

// SeqTimes is the outcome of a simulated sequential compilation.
type SeqTimes struct {
	Elapsed float64 // wall-clock ("user time" in the paper)
	CPU     float64 // processor time on the single workstation
	SwapSec float64 // time lost to paging (part of Elapsed)
	GCSec   float64 // garbage collection (part of CPU)
}

// ParTimes is the outcome of a simulated parallel compilation, with the
// decomposition the paper's overhead analysis needs (§4.2.3).
type ParTimes struct {
	Elapsed float64
	// Implementation overhead: the extra work the parallel compiler does.
	SetupSec   float64 // master's structural parse
	SchedSec   float64 // master's coordination of section masters
	SectionSec float64 // section masters (startup + combining)
	// Per-processor CPU time: the largest single function master's CPU
	// (the paper plots CPU time "on a per-processor basis").
	MaxProcCPU float64
	// System overhead components, summed over all function masters.
	StartupSec  float64 // Lisp process creation
	DownloadSec float64 // core-image transfer incl. queueing
	SwapSec     float64 // paging incl. queueing on Ethernet/file server
	GCSec       float64
	WaitSec     float64 // waiting for a free workstation
	// FuncCPU is each function master's CPU seconds (compile+gc+swap-cpu).
	FuncCPU []float64
	// Workers is the number of workstations used.
	Workers int
}

// ImplOverhead returns the implementation-overhead total (master + section
// masters), per the paper's definition.
func (t ParTimes) ImplOverhead() float64 {
	return t.SetupSec + t.SchedSec + t.SectionSec
}

// Cluster wires the simulated machines together for one run.
type cluster struct {
	eng      *des.Engine
	pm       costmodel.Params
	eth      *des.Resource
	fs       *des.Resource
	pool     *des.Pool
	stations int
	// pinned[i] serializes masters assigned to station i (Grouped mode);
	// assign maps function names to stations.
	pinned []*des.Resource
	assign map[string]int
}

func newCluster(pm costmodel.Params, workstations int) *cluster {
	eng := des.NewEngine()
	c := &cluster{
		eng:      eng,
		pm:       pm,
		eth:      eng.NewResource("ethernet", 1),
		fs:       eng.NewResource("fileserver", 1),
		pool:     eng.NewPool(workstations),
		stations: workstations,
	}
	for i := 0; i < workstations; i++ {
		c.pinned = append(c.pinned, eng.NewResource("station", 1))
	}
	return c
}

// transfer moves mb over the Ethernet to/from the file server, queueing
// FIFO on both shared media. Returns the time spent.
func (c *cluster) transfer(p *des.Proc, mb float64) float64 {
	start := p.Now()
	p.Use(c.eth, mb/c.pm.EthernetMBps)
	p.Use(c.fs, mb/c.pm.FileServerMBps)
	return p.Now() - start
}

// compileOn simulates phases 2+3 of one function on a dedicated node,
// interleaving CPU with paging traffic so that concurrent masters contend
// realistically on the shared media. Returns (cpuSec, swapWallSec, gcSec).
func (c *cluster) compileOn(p *des.Proc, fo parser.FuncOutline, contextLines int, retainedMB float64) (float64, float64, float64) {
	pm := c.pm
	cpu := pm.CompileSec(fo.Lines, fo.LoopDepth)
	ws := pm.WorkingSetMB(fo.Lines, contextLines, retainedMB)
	pressure := pm.MemoryPressure(ws)
	cpu += pm.SwapCPU(cpu, pressure)
	gc := pm.GCSec(ws)
	swapMB := pm.SwapMB(cpu, pressure)

	swapWall := 0.0
	const chunks = 8
	for i := 0; i < chunks; i++ {
		p.Sleep(cpu / chunks)
		if swapMB > 0 {
			swapWall += c.transfer(p, swapMB/chunks)
		}
	}
	p.Sleep(gc)
	return cpu, swapWall, gc
}

// seqRecipe runs the sequential compiler for one module on the calling
// simulated process (which should hold a workstation).
func (c *cluster) seqRecipe(p *des.Proc, o *parser.Outline, out *SeqTimes) {
	pm := c.pm
	start := p.Now()
	// One Lisp process for the whole compilation.
	p.Sleep(pm.LispStartupSec)
	out.CPU += pm.LispStartupSec
	c.transfer(p, pm.ImageMB)

	total := 0
	for _, fo := range o.AllFunctions() {
		total += fo.Lines
	}
	parse := pm.ParseSec(total)
	p.Sleep(parse)
	out.CPU += parse

	// Phases 2+3, function after function; the long-lived process retains
	// heap, eventually paging against the node's memory.
	retained := 0.0
	for _, fo := range o.AllFunctions() {
		cpu, swapWall, gc := c.compileOn(p, fo, total, retained)
		out.CPU += cpu + gc
		out.SwapSec += swapWall
		out.GCSec += gc
		retained += pm.RetainPerLineMB * float64(fo.Lines)
	}

	// Phase 4: assembly per function, then linking.
	for _, fo := range o.AllFunctions() {
		a := pm.AsmSec(fo.Lines)
		p.Sleep(a)
		out.CPU += a
	}
	p.Sleep(pm.LinkFixed)
	out.CPU += pm.LinkFixed
	out.Elapsed = p.Now() - start
}

// SimulateSequential runs the sequential compiler for the module outline on
// one workstation of a fresh cluster.
func SimulateSequential(o *parser.Outline, pm costmodel.Params) SeqTimes {
	c := newCluster(pm, 1)
	var out SeqTimes
	c.eng.Go(func(p *des.Proc) {
		c.seqRecipe(p, o, &out)
	})
	c.eng.Run()
	return out
}

// BatchMode selects the per-module compiler for SimulateBatch.
type BatchMode int

const (
	// BatchSequentialCompiler is the paper's parallel-make baseline: each
	// module is one job compiled by the sequential compiler on a pooled
	// workstation.
	BatchSequentialCompiler BatchMode = iota
	// BatchParallelCompiler is the coexistence scenario (§3.4): parallel
	// make organizes modules while each module is itself compiled by the
	// parallel compiler, all sharing one workstation pool.
	BatchParallelCompiler
)

// SimulateBatch builds several independent modules concurrently on one
// cluster of `stations` workstations and returns the makespan in seconds.
func SimulateBatch(outlines []*parser.Outline, pm costmodel.Params, stations int, mode BatchMode) float64 {
	c := newCluster(pm, stations)
	elapsed := 0.0
	for _, o := range outlines {
		o := o
		switch mode {
		case BatchSequentialCompiler:
			c.eng.Go(func(p *des.Proc) {
				var out SeqTimes
				station, _ := p.AcquireStation(c.pool)
				c.seqRecipe(p, o, &out)
				p.ReleaseStation(c.pool, station)
				if p.Now() > elapsed {
					elapsed = p.Now()
				}
			})
		case BatchParallelCompiler:
			c.eng.Go(func(p *des.Proc) {
				var out ParTimes
				c.parRecipe(p, o, FCFS, &out)
				if p.Now() > elapsed {
					elapsed = p.Now()
				}
			})
		}
	}
	c.eng.Run()
	return elapsed
}

// Strategy selects the function-master placement.
type Strategy int

const (
	// FCFS gives every function its own master, placed on the next free
	// workstation — the measured system's policy (§3.3).
	FCFS Strategy = iota
	// Grouped balances estimated costs over the workstations first (§4.3's
	// improved heuristic); each group shares one master process.
	Grouped
)

// SimulateParallel runs the parallel compiler for the outline on a cluster
// of `workstations` workers (the master and section masters run on the
// invoking host, which is not part of the pool, as in the paper's 9
// processors for 9 functions).
func SimulateParallel(o *parser.Outline, pm costmodel.Params, workstations int, strat Strategy) ParTimes {
	c := newCluster(pm, workstations)
	out := ParTimes{Workers: workstations}

	totalLines := 0
	for _, fo := range o.AllFunctions() {
		totalLines += fo.Lines
	}

	// Under the grouped strategy the master derives a global placement from
	// its structural parse: estimated costs balanced over the stations
	// (§4.3 — "this information is readily available" to the master).
	if strat == Grouped {
		var tasks []sched.Task
		for _, so := range o.Sections {
			for _, fo := range so.Functions {
				tasks = append(tasks, sched.Task{Name: fo.Name, Section: fo.Section,
					Index: fo.Index, Lines: fo.Lines, LoopDepth: fo.LoopDepth})
			}
		}
		c.assign = make(map[string]int)
		for station, g := range sched.Group(tasks, workstations) {
			for _, task := range g {
				c.assign[task.Name] = station
			}
		}
	}

	c.eng.Go(func(p *des.Proc) {
		c.parRecipe(p, o, strat, &out)
	})
	c.eng.Run()

	for _, cpu := range out.FuncCPU {
		if cpu > out.MaxProcCPU {
			out.MaxProcCPU = cpu
		}
	}
	return out
}

// parRecipe runs the parallel compiler's master process for one module on
// the calling simulated process.
func (c *cluster) parRecipe(p *des.Proc, o *parser.Outline, strat Strategy, out *ParTimes) {
	pm := c.pm
	totalLines := 0
	for _, fo := range o.AllFunctions() {
		totalLines += fo.Lines
	}
	start := p.Now()

	// Master: C-process startup plus one Lisp parse of the module to obtain
	// the partitioning ("setup time").
	p.Sleep(pm.MasterFixed)
	p.Sleep(pm.LispStartupSec)
	c.transfer(p, pm.ImageMB)
	parse := pm.ParseSec(totalLines)
	p.Sleep(parse)
	out.SetupSec = p.Now() - start

	// Fork section masters and wait.
	wg := c.eng.NewWaitGroup(len(o.Sections))
	for _, so := range o.Sections {
		so := so
		c.eng.Go(func(sp *des.Proc) {
			c.runSectionMaster(sp, so, totalLines, strat, out)
			wg.Done()
		})
	}
	p.Wait(wg)
	// Scheduling time: the master's own coordination cost, a small
	// per-section charge (the wall time above is the children's).
	sched := pm.MasterFixed * float64(len(o.Sections)) * 0.3
	p.Sleep(sched)
	out.SchedSec = sched

	// Sequential tail: assembly of every function, then linking.
	for _, fo := range o.AllFunctions() {
		p.Sleep(pm.AsmSec(fo.Lines))
	}
	p.Sleep(pm.LinkFixed)
	out.Elapsed = p.Now() - start
}

// runSectionMaster simulates one section master: fork function masters per
// the strategy, wait, combine results.
func (c *cluster) runSectionMaster(p *des.Proc, so parser.SectionOutline, totalLines int, strat Strategy, out *ParTimes) {
	pm := c.pm
	p.Sleep(pm.MasterFixed) // C-process startup + directive interpretation

	// One function master per function under FCFS; under Grouped, this
	// section's functions that share an assigned station also share one
	// Lisp master process (one startup, sequential compiles).
	var groups [][]parser.FuncOutline
	var stations []int
	switch strat {
	case Grouped:
		byStation := make(map[int][]parser.FuncOutline)
		var order []int
		for _, fo := range so.Functions {
			st := c.assign[fo.Name]
			if _, seen := byStation[st]; !seen {
				order = append(order, st)
			}
			byStation[st] = append(byStation[st], fo)
		}
		for _, st := range order {
			groups = append(groups, byStation[st])
			stations = append(stations, st)
		}
	default:
		for _, fo := range so.Functions {
			groups = append(groups, []parser.FuncOutline{fo})
			stations = append(stations, -1)
		}
	}

	wg := c.eng.NewWaitGroup(len(groups))
	for i, g := range groups {
		g := g
		st := stations[i]
		c.eng.Go(func(fp *des.Proc) {
			c.runFunctionMaster(fp, g, totalLines, st, out)
			wg.Done()
		})
	}
	p.Wait(wg)

	// Combine objects and diagnostic output. The section master's own CPU
	// (its implementation-overhead contribution) is its process startup
	// plus this combining step; the waiting above overlaps the children.
	combine := pm.CombineSecPerFunc * float64(len(so.Functions))
	p.Sleep(combine)
	out.SectionSec += pm.MasterFixed + combine

}

// runFunctionMaster simulates one Lisp function master compiling the given
// functions (usually one; several when grouped) on one workstation.
// Returns the master's CPU seconds.
func (c *cluster) runFunctionMaster(p *des.Proc, fos []parser.FuncOutline, totalLines int, pinnedStation int, out *ParTimes) float64 {
	pm := c.pm
	if pinnedStation >= 0 {
		wait := p.Acquire(c.pinned[pinnedStation])
		defer p.Release(c.pinned[pinnedStation])
		out.WaitSec += wait
	} else {
		station, wait := p.AcquireStation(c.pool)
		defer p.ReleaseStation(c.pool, station)
		out.WaitSec += wait
	}

	// Lisp process startup and core-image download on this node.
	p.Sleep(pm.LispStartupSec)
	out.StartupSec += pm.LispStartupSec
	out.DownloadSec += c.transfer(p, pm.ImageMB)

	// The master already partitioned the program, so the function master
	// only rebuilds the context of its own functions — the paper's "each
	// works on a smaller subproblem", which is also what keeps its working
	// set below a single workstation's memory.
	groupLines := 0
	for _, fo := range fos {
		groupLines += fo.Lines
	}
	parse := pm.ParseSec(groupLines)
	p.Sleep(parse)

	cpuTotal := pm.LispStartupSec + parse
	retained := 0.0
	for _, fo := range fos {
		cpu, swapWall, gc := c.compileOn(p, fo, groupLines, retained)
		out.SwapSec += swapWall
		out.GCSec += gc
		cpuTotal += cpu + gc
		retained += pm.RetainPerLineMB * float64(fo.Lines)
	}

	// Write the object(s) back to the file server.
	out.DownloadSec += c.transfer(p, pm.ObjectMB*float64(len(fos)))

	out.FuncCPU = append(out.FuncCPU, cpuTotal)
	return cpuTotal
}

// Package asm implements phase 4's assembler: it turns scheduled machine
// code into relocatable object files with a binary encoding, symbol tables
// and relocation records, ready for the linker.
package asm

import (
	"fmt"
	"sort"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
)

// RelocKind distinguishes branch-target from data-address relocations.
type RelocKind uint8

const (
	// RelocBranch patches a CTRL instruction's Imm with a code word index.
	RelocBranch RelocKind = iota
	// RelocData patches a MEM instruction's Imm with a data base address.
	RelocData
)

// Reloc is one relocation record.
type Reloc struct {
	Word int // instruction word index within the object's code
	Unit machine.Unit
	Kind RelocKind
	Sym  string
}

// DataSym is a data-memory allocation request (a function-local array or
// spill slot).
type DataSym struct {
	Name  string
	Words int
}

// Object is one assembled function.
type Object struct {
	Name    string
	Section int
	IsEntry bool
	Code    []machine.Word
	// Labels maps code labels to word offsets within Code.
	Labels map[string]int
	Relocs []Reloc
	Data   []DataSym
}

// Assemble converts scheduled machine code into an object file. Every block
// must already carry its final instruction words.
func Assemble(pf *codegen.PFunc) (*Object, error) {
	obj := &Object{
		Name:    pf.Name,
		Section: pf.Section,
		IsEntry: pf.IsEntry,
		Labels:  make(map[string]int),
	}
	for _, a := range pf.Arrays {
		obj.Data = append(obj.Data, DataSym{Name: dataSymName(pf.Name, a.Sym), Words: a.Words})
	}
	for _, b := range pf.Blocks {
		if b.Scheduled == nil {
			return nil, fmt.Errorf("%s: block %s is unscheduled", pf.Name, b.Label)
		}
		if _, dup := obj.Labels[b.Label]; dup {
			return nil, fmt.Errorf("%s: duplicate label %s", pf.Name, b.Label)
		}
		obj.Labels[b.Label] = len(obj.Code)
		for _, w := range b.Scheduled {
			wi := len(obj.Code)
			// Collect relocations for symbolic operands.
			for u := machine.Unit(0); u < machine.NumUnits; u++ {
				in := w[u]
				if in.Sym == "" {
					continue
				}
				switch {
				case machine.IsBranch(in.Op):
					obj.Relocs = append(obj.Relocs, Reloc{Word: wi, Unit: u, Kind: RelocBranch, Sym: in.Sym})
				case in.Op == machine.LOAD || in.Op == machine.STORE:
					obj.Relocs = append(obj.Relocs, Reloc{Word: wi, Unit: u, Kind: RelocData, Sym: dataSymName(pf.Name, in.Sym)})
				default:
					return nil, fmt.Errorf("%s: op %s carries a symbol but is not relocatable", pf.Name, in)
				}
				// The relocation record is authoritative; the stored word
				// keeps only the encodable fields so that the binary
				// encoding round-trips exactly.
				w[u].Sym = ""
			}
			obj.Code = append(obj.Code, w)
		}
	}
	sort.Slice(obj.Relocs, func(i, j int) bool {
		if obj.Relocs[i].Word != obj.Relocs[j].Word {
			return obj.Relocs[i].Word < obj.Relocs[j].Word
		}
		return obj.Relocs[i].Unit < obj.Relocs[j].Unit
	})
	return obj, nil
}

// dataSymName qualifies a function-local data symbol with its function so
// that objects of one section can be linked together without collisions.
func dataSymName(fn, sym string) string { return fn + "/" + sym }

// NumWords returns the code size in instruction words.
func (o *Object) NumWords() int { return len(o.Code) }

// DataWords returns the total data allocation of the object.
func (o *Object) DataWords() int {
	n := 0
	for _, d := range o.Data {
		n += d.Words
	}
	return n
}

// Listing renders a human-readable assembly listing with labels, one word
// per line — the compiler's -S output.
func (o *Object) Listing() string {
	byOffset := make(map[int][]string)
	for l, off := range o.Labels {
		byOffset[off] = append(byOffset[off], l)
	}
	for _, ls := range byOffset {
		sort.Strings(ls)
	}
	s := fmt.Sprintf("; object %s (section %d, %d words, %d data words)\n",
		o.Name, o.Section, o.NumWords(), o.DataWords())
	for _, d := range o.Data {
		s += fmt.Sprintf("; data %s: %d words\n", d.Name, d.Words)
	}
	for i, w := range o.Code {
		for _, l := range byOffset[i] {
			s += l + ":\n"
		}
		s += fmt.Sprintf("  %04d  %s\n", i, w.String())
	}
	return s
}

var _ = ir.None // dependency note: codegen.PFunc carries ir.ArrayVar

package asm

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
)

func samplePFunc() *codegen.PFunc {
	return &codegen.PFunc{
		Name:    "f",
		Section: 2,
		IsEntry: true,
		Arrays:  []ir.ArrayVar{{Sym: "a$0", Words: 16}, {Sym: "spill$3", Words: 1}},
		Blocks: []*codegen.PBlock{
			{
				Label: "f.b0",
				Scheduled: []machine.Word{
					wordWith(machine.ALU, machine.Instr{Op: machine.LDI, Dst: 2, Imm: 5}),
					wordWith(machine.MEM, machine.Instr{Op: machine.STORE, A: 0, B: 2, Sym: "a$0"}),
					wordWith(machine.CTRL, machine.Instr{Op: machine.JMP, Sym: "f.b1"}),
				},
			},
			{
				Label: "f.b1",
				Scheduled: []machine.Word{
					wordWith(machine.MEM, machine.Instr{Op: machine.LOAD, Dst: 3, A: 0, Sym: "a$0"}),
					wordWith(machine.CTRL, machine.Instr{Op: machine.HALT}),
				},
			},
		},
	}
}

func wordWith(u machine.Unit, in machine.Instr) machine.Word {
	var w machine.Word
	w[u] = in
	return w
}

func TestAssemble(t *testing.T) {
	obj, err := Assemble(samplePFunc())
	if err != nil {
		t.Fatal(err)
	}
	if obj.NumWords() != 5 {
		t.Errorf("code words = %d, want 5", obj.NumWords())
	}
	if obj.Labels["f.b0"] != 0 || obj.Labels["f.b1"] != 3 {
		t.Errorf("labels wrong: %v", obj.Labels)
	}
	if len(obj.Relocs) != 3 {
		t.Fatalf("relocs = %d, want 3 (%v)", len(obj.Relocs), obj.Relocs)
	}
	kinds := map[RelocKind]int{}
	for _, r := range obj.Relocs {
		kinds[r.Kind]++
		if r.Kind == RelocData && !strings.HasPrefix(r.Sym, "f/") {
			t.Errorf("data symbol %q not function-qualified", r.Sym)
		}
	}
	if kinds[RelocBranch] != 1 || kinds[RelocData] != 2 {
		t.Errorf("reloc kinds wrong: %v", kinds)
	}
	if obj.DataWords() != 17 {
		t.Errorf("data words = %d, want 17", obj.DataWords())
	}
	// Stored words must carry no symbols (relocations are authoritative).
	for i, w := range obj.Code {
		for u := range w {
			if w[u].Sym != "" {
				t.Errorf("word %d slot %d still has symbol %q", i, u, w[u].Sym)
			}
		}
	}
}

func TestAssembleRejectsUnscheduled(t *testing.T) {
	pf := samplePFunc()
	pf.Blocks[0].Scheduled = nil
	if _, err := Assemble(pf); err == nil {
		t.Error("expected error for unscheduled block")
	}
}

func TestAssembleRejectsDuplicateLabels(t *testing.T) {
	pf := samplePFunc()
	pf.Blocks[1].Label = pf.Blocks[0].Label
	if _, err := Assemble(pf); err == nil {
		t.Error("expected error for duplicate label")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	obj, err := Assemble(samplePFunc())
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(obj)
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(obj, back) {
		t.Errorf("round trip mismatch:\nfirst:  %+v\nsecond: %+v", obj, back)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("W2OB"),
		append([]byte("W2OB"), 0xFF, 0xFF), // bad version
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	obj, _ := Assemble(samplePFunc())
	data := Encode(obj)
	for _, cut := range []int{5, 10, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Must not panic, error or not.
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Mutations of a valid object must not panic either.
	obj, _ := Assemble(samplePFunc())
	data := Encode(obj)
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x55
		_, _ = Decode(mut)
	}
}

func TestListing(t *testing.T) {
	obj, _ := Assemble(samplePFunc())
	l := obj.Listing()
	for _, want := range []string{"f.b0:", "f.b1:", "ldi", "halt", "data f/a$0"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

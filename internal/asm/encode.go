package asm

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/machine"
)

// Binary object-file format ("W2OB"):
//
//	magic "W2OB", version u16
//	name string, section u16, isEntry u8
//	code: u32 count, then per word 6 slots of (op u8, dst u8, a u8, b u8, imm i32)
//	labels: u32 count of (string, u32 offset)
//	relocs: u32 count of (u32 word, u8 unit, u8 kind, string sym)
//	data:   u32 count of (string name, u32 words)
//
// Strings are u16 length + bytes. All integers are little-endian.

var magic = [4]byte{'W', '2', 'O', 'B'}

const version uint16 = 1

// Encode serializes the object to its binary form.
func Encode(o *Object) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	writeU16(&buf, version)
	writeString(&buf, o.Name)
	writeU16(&buf, uint16(o.Section))
	if o.IsEntry {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}

	writeU32(&buf, uint32(len(o.Code)))
	for _, w := range o.Code {
		for u := 0; u < int(machine.NumUnits); u++ {
			in := w[u]
			buf.WriteByte(byte(in.Op))
			buf.WriteByte(byte(in.Dst))
			buf.WriteByte(byte(in.A))
			buf.WriteByte(byte(in.B))
			writeI32(&buf, in.Imm)
		}
	}

	// Labels in deterministic order.
	writeU32(&buf, uint32(len(o.Labels)))
	for _, name := range sortedLabelNames(o) {
		writeString(&buf, name)
		writeU32(&buf, uint32(o.Labels[name]))
	}

	writeU32(&buf, uint32(len(o.Relocs)))
	for _, r := range o.Relocs {
		writeU32(&buf, uint32(r.Word))
		buf.WriteByte(byte(r.Unit))
		buf.WriteByte(byte(r.Kind))
		writeString(&buf, r.Sym)
	}

	writeU32(&buf, uint32(len(o.Data)))
	for _, d := range o.Data {
		writeString(&buf, d.Name)
		writeU32(&buf, uint32(d.Words))
	}
	return buf.Bytes()
}

// Decode parses a binary object file.
func Decode(data []byte) (*Object, error) {
	r := &reader{data: data}
	var m [4]byte
	r.bytes(m[:])
	if m != magic {
		return nil, fmt.Errorf("bad object magic %q", m)
	}
	if v := r.u16(); v != version {
		return nil, fmt.Errorf("unsupported object version %d", v)
	}
	o := &Object{Labels: make(map[string]int)}
	o.Name = r.str()
	o.Section = int(r.u16())
	o.IsEntry = r.u8() != 0

	nCode := int(r.u32())
	if nCode > machine.ProgMemWords {
		return nil, fmt.Errorf("object code %d words exceeds program memory", nCode)
	}
	o.Code = make([]machine.Word, nCode)
	for i := 0; i < nCode; i++ {
		for u := 0; u < int(machine.NumUnits); u++ {
			var in machine.Instr
			in.Op = machine.Opcode(r.u8())
			in.Dst = machine.Reg(r.u8())
			in.A = machine.Reg(r.u8())
			in.B = machine.Reg(r.u8())
			in.Imm = r.i32()
			if int(in.Op) >= machine.NumOpcodes() {
				return nil, fmt.Errorf("word %d: invalid opcode %d", i, in.Op)
			}
			o.Code[i][u] = in
		}
	}

	nLabels := int(r.u32())
	for i := 0; i < nLabels; i++ {
		if r.err != nil {
			return nil, r.err
		}
		name := r.str()
		off := int(r.u32())
		if off > nCode {
			return nil, fmt.Errorf("label %s offset %d out of range", name, off)
		}
		o.Labels[name] = off
	}

	nRelocs := int(r.u32())
	for i := 0; i < nRelocs; i++ {
		if r.err != nil {
			return nil, r.err
		}
		var rl Reloc
		rl.Word = int(r.u32())
		rl.Unit = machine.Unit(r.u8())
		rl.Kind = RelocKind(r.u8())
		rl.Sym = r.str()
		if rl.Word >= nCode || rl.Unit >= machine.NumUnits {
			return nil, fmt.Errorf("relocation %d out of range", i)
		}
		o.Relocs = append(o.Relocs, rl)
	}

	nData := int(r.u32())
	for i := 0; i < nData; i++ {
		if r.err != nil {
			return nil, r.err
		}
		var d DataSym
		d.Name = r.str()
		d.Words = int(r.u32())
		o.Data = append(o.Data, d)
	}
	if r.err != nil {
		return nil, r.err
	}
	return o, nil
}

func sortedLabelNames(o *Object) []string {
	names := make([]string, 0, len(o.Labels))
	for n := range o.Labels {
		names = append(names, n)
	}
	// insertion sort keeps this file free of extra imports
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func writeU16(b *bytes.Buffer, v uint16) { binary.Write(b, binary.LittleEndian, v) }
func writeU32(b *bytes.Buffer, v uint32) { binary.Write(b, binary.LittleEndian, v) }
func writeI32(b *bytes.Buffer, v int32)  { binary.Write(b, binary.LittleEndian, v) }

func writeString(b *bytes.Buffer, s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	writeU16(b, uint16(len(s)))
	b.WriteString(s)
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(out []byte) {
	if r.err != nil {
		return
	}
	if r.pos+len(out) > len(r.data) {
		r.err = fmt.Errorf("truncated object file at offset %d", r.pos)
		return
	}
	copy(out, r.data[r.pos:])
	r.pos += len(out)
}

func (r *reader) u8() uint8 {
	var b [1]byte
	r.bytes(b[:])
	return b[0]
}

func (r *reader) u16() uint16 {
	var b [2]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint16(b[:])
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil {
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}

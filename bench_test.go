// Package repro's benchmark harness: one benchmark per reproduced figure of
// "Parallel Compilation for a Parallel Machine" (PLDI 1989), plus real
// compiler benchmarks and the ablations called out in DESIGN.md.
//
// The figure benches run the calibrated host simulation and report the
// headline metric of their figure as a custom unit (speedups, overhead
// percentages), so `go test -bench .` regenerates the paper's evaluation.
// Use `go run ./cmd/benchfig` to print the full series of every figure.
package repro

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/fcache"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/warpsim"
	"repro/internal/wgen"
)

func pm() costmodel.Params { return costmodel.Default1989() }

// reportFigure runs the generator b.N times and attaches headline metrics.
func reportFigure(b *testing.B, gen func(costmodel.Params) *stats.Table, metrics func(*stats.Table, *testing.B)) {
	b.Helper()
	var tbl *stats.Table
	for i := 0; i < b.N; i++ {
		tbl = gen(pm())
	}
	if tbl != nil {
		metrics(tbl, b)
		if testing.Verbose() {
			b.Log("\n" + tbl.String())
		}
	}
}

func metric(b *testing.B, tbl *stats.Table, series string, x float64, unit string) {
	if v, ok := tbl.Get(series, x); ok {
		b.ReportMetric(v, unit)
	} else {
		b.Fatalf("missing %s at %g in %s", series, x, tbl.Title)
	}
}

func BenchmarkFig03Tiny(b *testing.B) {
	reportFigure(b, experiments.Fig03Tiny, func(t *stats.Table, b *testing.B) {
		metric(b, t, "par elapsed", 8, "par_s8_sec")
		metric(b, t, "seq elapsed", 8, "seq_s8_sec")
	})
}

func BenchmarkFig04Large(b *testing.B) {
	reportFigure(b, experiments.Fig04Large, func(t *stats.Table, b *testing.B) {
		metric(b, t, "par elapsed", 8, "par_s8_sec")
		metric(b, t, "seq elapsed", 8, "seq_s8_sec")
	})
}

func BenchmarkFig05Huge(b *testing.B) {
	reportFigure(b, experiments.Fig05Huge, func(t *stats.Table, b *testing.B) {
		metric(b, t, "par elapsed", 8, "par_s8_sec")
		metric(b, t, "seq elapsed", 8, "seq_s8_sec")
	})
}

func BenchmarkFig06Speedup(b *testing.B) {
	reportFigure(b, experiments.Fig06Speedup, func(t *stats.Table, b *testing.B) {
		metric(b, t, "f_large", 8, "large_speedup")
		metric(b, t, "f_huge", 8, "huge_speedup")
		metric(b, t, "f_tiny", 8, "tiny_speedup")
	})
}

func BenchmarkFig07SpeedupVsSize(b *testing.B) {
	reportFigure(b, experiments.Fig07SpeedupVsSize, func(t *stats.Table, b *testing.B) {
		metric(b, t, "8 function(s)", 280, "large_speedup")
		metric(b, t, "8 function(s)", 4, "tiny_speedup")
	})
}

func BenchmarkFig08OverheadSmall(b *testing.B) {
	reportFigure(b, experiments.Fig08OverheadSmall, func(t *stats.Table, b *testing.B) {
		metric(b, t, "rel total ovh f_tiny", 8, "tiny_ovh_pct")
	})
}

func BenchmarkFig09OverheadMedium(b *testing.B) {
	reportFigure(b, experiments.Fig09OverheadMedium, func(t *stats.Table, b *testing.B) {
		metric(b, t, "rel system ovh f_medium", 2, "medium_sysovh_n2_pct")
		metric(b, t, "rel total ovh f_large", 8, "large_ovh_n8_pct")
	})
}

func BenchmarkFig10OverheadHuge(b *testing.B) {
	reportFigure(b, experiments.Fig10OverheadHuge, func(t *stats.Table, b *testing.B) {
		metric(b, t, "rel total ovh f_huge", 8, "huge_ovh_n8_pct")
	})
}

func BenchmarkFig11UserProgram(b *testing.B) {
	reportFigure(b, experiments.Fig11UserProgram, func(t *stats.Table, b *testing.B) {
		metric(b, t, "grouped (heuristic)", 2, "speedup_p2")
		metric(b, t, "grouped (heuristic)", 9, "speedup_p9")
	})
}

func BenchmarkFig12Small(b *testing.B) {
	reportFigure(b, experiments.Fig12Small, func(t *stats.Table, b *testing.B) {
		metric(b, t, "par elapsed", 8, "par_s8_sec")
	})
}

func BenchmarkFig13Medium(b *testing.B) {
	reportFigure(b, experiments.Fig13Medium, func(t *stats.Table, b *testing.B) {
		metric(b, t, "par elapsed", 8, "par_s8_sec")
	})
}

func BenchmarkFig14AbsOverheadSmall(b *testing.B) {
	reportFigure(b, experiments.Fig14AbsOverheadSmall, func(t *stats.Table, b *testing.B) {
		metric(b, t, "total ovh f_tiny", 8, "tiny_ovh_sec")
	})
}

func BenchmarkFig15AbsOverheadMedium(b *testing.B) {
	reportFigure(b, experiments.Fig15AbsOverheadMedium, func(t *stats.Table, b *testing.B) {
		metric(b, t, "total ovh f_medium", 8, "medium_ovh_sec")
	})
}

func BenchmarkFig16AbsOverheadHuge(b *testing.B) {
	reportFigure(b, experiments.Fig16AbsOverheadHuge, func(t *stats.Table, b *testing.B) {
		metric(b, t, "total ovh f_huge", 8, "huge_ovh_sec")
	})
}

func BenchmarkKatseffProcessorSweep(b *testing.B) {
	reportFigure(b, experiments.KatseffSweep, func(t *stats.Table, b *testing.B) {
		metric(b, t, "large program (8 x f_large)", 8, "large_speedup_p8")
		metric(b, t, "small program (8 x f_small)", 5, "small_speedup_p5")
	})
}

func BenchmarkHeadlineSpeedup(b *testing.B) {
	reportFigure(b, experiments.HeadlineSpeedup, func(t *stats.Table, b *testing.B) {
		metric(b, t, "user program", 9, "user_speedup")
	})
}

func BenchmarkPmakeBaseline(b *testing.B) {
	reportFigure(b, experiments.PmakeComparison, func(t *stats.Table, b *testing.B) {
		metric(b, t, "pmake + sequential compiler", 2, "pmake_seq_sec")
		metric(b, t, "pmake + parallel compiler", 4, "coexist_sec")
	})
}

// ---------------------------------------------------------------------------
// Real-compiler benchmarks: the actual Go implementation doing the work the
// cost model prices.

func BenchmarkRealCompile(b *testing.B) {
	for _, size := range wgen.Sizes {
		b.Run(size.String(), func(b *testing.B) {
			src := wgen.SyntheticProgram(size, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := compiler.CompileModule("bench.w2", src, compiler.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealParallelCompile measures the real parallel compiler, cached
// and uncached. The cached pool lives across iterations, so after the first
// build every function master hits the content-addressed frontend/IR cache —
// the redundant parse/check/lower work the uncached variant repeats N·F
// times is the difference between the two series.
func BenchmarkRealParallelCompile(b *testing.B) {
	src := wgen.UserProgram()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			pool := cluster.NewLocalPool(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ParallelCompile("bench.w2", src, pool, compiler.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s := pool.CacheStats()
			b.ReportMetric(float64(s.Hits()), "cache_hits")
		})
		b.Run(fmt.Sprintf("workers-%d-uncached", workers), func(b *testing.B) {
			pool := cluster.NewLocalPoolWith(workers, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ParallelCompile("bench.w2", src, pool, compiler.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealBatchDispatch measures the production fix for the paper's
// headline negative result: a module of 32 small functions over 4 real RPC
// workers, dispatched per-function in FCFS order (the measured system)
// versus LPT-ordered with small functions packed into batches. Workers keep
// warm caches across iterations, so each compile is cheap and the
// per-request RPC overhead dominates — exactly the overhead the paper
// clocked at up to 70% of elapsed time, and what batching amortizes.
func BenchmarkRealBatchDispatch(b *testing.B) {
	src := wgen.SmallFuncsProgram(32)
	policies := []struct {
		name  string
		popts core.ParallelOptions
	}{
		{"fcfs", core.ParallelOptions{Sched: core.SchedFCFS}},
		{"lpt-batch", core.ParallelOptions{Sched: core.SchedLPT}},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			var servers []*cluster.WorkerServer
			var addrs []string
			for i := 0; i < 4; i++ {
				srv, err := cluster.NewWorkerServer("127.0.0.1:0", 0)
				if err != nil {
					b.Fatal(err)
				}
				servers = append(servers, srv)
				addrs = append(addrs, srv.Addr())
			}
			defer func() {
				for _, s := range servers {
					s.Close()
				}
			}()
			pool, err := cluster.DialPool(addrs)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			// Warm the worker caches to steady state: placement varies per
			// run, so one pass leaves most (worker, function) pairs cold and
			// early iterations would measure first-build compilation instead
			// of dispatch.
			for i := 0; i < 8; i++ {
				if _, _, err := core.ParallelCompileWith("bench.w2", src, pool, compiler.Options{}, pc.popts); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var stats *core.ParallelStats
			for i := 0; i < b.N; i++ {
				if _, stats, err = core.ParallelCompileWith("bench.w2", src, pool, compiler.Options{}, pc.popts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.Dispatch.Units), "units")
			b.ReportMetric(float64(stats.Dispatch.Batches), "batches")
		})
	}
}

// BenchmarkIncrementalRecompile measures function-grain incremental
// recompilation: recompiling a 16-function module after editing exactly one
// function, against compiling the module cold. Warm pools keep their caches
// across iterations and every iteration edits a different function (seed =
// iteration), so the steady state is the honest one-edit case: 15 of 16
// functions are answered from the object tier (by the section master, or by
// a worker over a shared cache directory) and phases 2+3 run for the edited
// function alone. The edit itself happens outside the timer.
func BenchmarkIncrementalRecompile(b *testing.B) {
	// 16 f_small functions: the largest one-section module that fits cell
	// program memory (f_medium at this count overflows the 16K-word store).
	base := wgen.SyntheticProgram(wgen.Small, 16)
	variant := func(b *testing.B, i int) []byte {
		src, _, err := wgen.MutateFunctions(base, 1, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		return src
	}
	compile := func(b *testing.B, pool core.Backend, src []byte) *core.ParallelStats {
		_, stats, err := core.ParallelCompile("bench.w2", src, pool, compiler.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return stats
	}
	rpcWorkers := func(b *testing.B, cacheBytes int64, dir string) []string {
		var addrs []string
		for i := 0; i < 4; i++ {
			srv, err := cluster.NewWorkerServerDir("127.0.0.1:0", cacheBytes, dir)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			addrs = append(addrs, srv.Addr())
		}
		return addrs
	}

	b.Run("local-cold", func(b *testing.B) {
		b.Setenv(fcache.EnvCacheDir, "") // exact cold/warm contrast: no ambient disk tier
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			src := variant(b, i)
			pool := cluster.NewLocalPoolWith(4, nil)
			b.StartTimer()
			compile(b, pool, src)
		}
	})
	b.Run("local-warm-1-edit", func(b *testing.B) {
		b.Setenv(fcache.EnvCacheDir, "")
		pool := cluster.NewLocalPool(4)
		compile(b, pool, base)
		b.ResetTimer()
		var stats *core.ParallelStats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			src := variant(b, i)
			b.StartTimer()
			stats = compile(b, pool, src)
		}
		b.StopTimer()
		b.ReportMetric(stats.Dispatch.RecompileRatio, "recompile_ratio")
	})
	b.Run("rpc-cold", func(b *testing.B) {
		b.Setenv(fcache.EnvCacheDir, "")
		pool, err := cluster.DialPool(rpcWorkers(b, -1, "")) // caching disabled
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			src := variant(b, i)
			b.StartTimer()
			compile(b, pool, src)
		}
	})
	b.Run("rpc-warm-1-edit", func(b *testing.B) {
		b.Setenv(fcache.EnvCacheDir, "")
		// The warpcc -cache-dir production setup: master and all four workers
		// share one persistent cache directory.
		dir := b.TempDir()
		pool, err := cluster.DialPoolWith(rpcWorkers(b, 0, dir), cluster.PoolOptions{CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		compile(b, pool, base)
		b.ResetTimer()
		var stats *core.ParallelStats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			src := variant(b, i)
			b.StartTimer()
			stats = compile(b, pool, src)
		}
		b.StopTimer()
		b.ReportMetric(stats.Dispatch.RecompileRatio, "recompile_ratio")
	})
}

// BenchmarkParallelFrontend measures the span-sliced parallel frontend
// against the sequential one on a wide module (32 same-sized functions over
// 4 sections, wgen -kind wide) — the workload where frontend wall time is
// bound by the largest function rather than the module. The outline is
// precomputed outside the timer, exactly as in production: the master's
// setup parse already paid for the spans before the frontend leg starts, so
// charging the parallel path for a second outline would measure a pipeline
// that does not exist.
func BenchmarkParallelFrontend(b *testing.B) {
	src := wgen.WideProgram(32, 4)
	o := mustOutline(b, src)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, info, bag := compiler.Frontend("bench.w2", src)
			if info == nil || bag.HasErrors() {
				b.Fatal(bag.String())
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			ctx := context.Background()
			var timing compiler.FrontendTiming
			for i := 0; i < b.N; i++ {
				_, info, bag, err := compiler.FrontendParallel(ctx, "bench.w2", src,
					compiler.FrontendOptions{Parallel: true, Workers: workers, Outline: o, Timing: &timing})
				if err != nil {
					b.Fatal(err)
				}
				if info == nil || bag.HasErrors() {
					b.Fatal(bag.String())
				}
			}
			b.ReportMetric(float64(timing.ParseWall.Nanoseconds()), "parse_wall_ns")
			b.ReportMetric(float64(timing.CheckWall.Nanoseconds()), "check_wall_ns")
		})
	}
}

// Ablations (DESIGN.md): what each phase-3 strategy buys, measured as
// simulated cell cycles on the same program.
func BenchmarkAblationCodegen(b *testing.B) {
	src := []byte(`
module dotp (in xs: float[256], out ys: float[1])
section 1 {
    function cell() {
        var i: int;
        var a: float;
        var bb: float;
        var acc: float = 0.0;
        for i = 0 to 127 {
            receive(X, a);
            receive(X, bb);
            acc = acc + a * bb;
        }
        send(Y, acc);
    }
}
`)
	in := make([]float64, 256)
	for i := range in {
		in[i] = float64(i%13) * 0.25
	}
	cases := []struct {
		name string
		opts codegen.Options
	}{
		{"full", codegen.Options{}},
		{"no-pipelining", codegen.Options{DisablePipelining: true}},
		{"no-scheduling", codegen.Options{DisablePipelining: true, DisableScheduling: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			res, err := compiler.CompileModule("abl.w2", src, compiler.Options{Codegen: c.opts})
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			for i := 0; i < b.N; i++ {
				arr := warpsim.NewArray(res.Module, warpsim.Config{})
				_, st, err := arr.Run(res.Driver.EncodeInput(in))
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cell_cycles")
		})
	}
}

// Ablation: the scheduling heuristic (§4.3) versus FCFS on scarce
// processors, in simulated seconds.
func BenchmarkAblationScheduling(b *testing.B) {
	o := mustOutline(b, wgen.UserProgram())
	for i := 0; i < b.N; i++ {
		fcfs := experimentsSimulateFCFS(o, 3)
		grouped := experimentsSimulateGrouped(o, 3)
		b.ReportMetric(fcfs, "fcfs_sec")
		b.ReportMetric(grouped, "grouped_sec")
	}
}

// Ablation: phase-2 optimization on vs off, measured in emitted words.
// Software pipelining is disabled on both sides so that prologue/epilogue
// replication (which deliberately trades words for cycles) does not mask
// the optimizer's code-size effect.
func BenchmarkAblationOptimizer(b *testing.B) {
	src := wgen.SyntheticProgram(wgen.Medium, 1)
	noPipe := codegen.Options{DisablePipelining: true}
	for i := 0; i < b.N; i++ {
		on, err := compiler.CompileModule("opt.w2", src, compiler.Options{Codegen: noPipe})
		if err != nil {
			b.Fatal(err)
		}
		off, err := compiler.CompileModule("opt.w2", src, compiler.Options{DisableOpt: true, Codegen: noPipe})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(on.Module.TotalWords()), "words_opt")
		b.ReportMetric(float64(off.Module.TotalWords()), "words_noopt")
	}
}

// BenchmarkPipelinedCompile measures the overlapped master against the
// strictly phased baseline on the straggler workload (one huge function +
// many tiny ones, wgen -kind mixed). Under the barrier master the
// sequential head (the full frontend) and tail (link + I/O driver) extend
// the straggler's wall time; the pipeline forks section masters on the
// outline alone, runs the frontend concurrently with the fleet, links each
// section as it streams in, and generates the driver during the parallel
// region — so its wall clock approaches setup + max(frontend, compile) +
// residual tail. Pools are uncached so every iteration is a genuine cold
// build (a warm cache would collapse both sides to microseconds and hide
// the head/tail being overlapped).
func BenchmarkPipelinedCompile(b *testing.B) {
	src := wgen.MixedProgram(12)
	for _, mode := range []struct {
		name  string
		popts core.ParallelOptions
	}{
		{"barrier", core.ParallelOptions{Barrier: true}},
		{"pipeline", core.ParallelOptions{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			pool := cluster.NewLocalPoolWith(4, nil)
			b.ResetTimer()
			var stats *core.ParallelStats
			for i := 0; i < b.N; i++ {
				var err error
				if _, stats, err = core.ParallelCompileWith("bench.w2", src, pool, compiler.Options{}, mode.popts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.FrontendTime.Nanoseconds()), "frontend_ns")
			b.ReportMetric(float64(stats.BackendTail.Nanoseconds()), "tail_ns")
			if !mode.popts.Barrier {
				b.ReportMetric(float64(stats.Pipeline.FrontendOverlap.Nanoseconds()), "frontend_overlap_ns")
				b.ReportMetric(float64(stats.Pipeline.CriticalPath.Nanoseconds()), "critical_path_ns")
			}
		})
	}
}

// BenchmarkStealDispatch measures the work-stealing fleet against the static
// per-section LPT plan on the stealer's target workload: one section dense
// with heavy functions while every other section master has nearly nothing —
// the static plan strands the light sections' workers while section 1's
// queue drains alone, and the shared fleet lets them steal into it. Pools
// are uncached so every iteration is a genuine cold build. The metrics
// decompose where the remaining wall time goes (per-worker idle,
// steal latency, splits); on a single-CPU host the two modes converge to
// the core-bound parity ceiling documented in BENCH_steal.json.
func BenchmarkStealDispatch(b *testing.B) {
	src := wgen.SkewedProgram(4, 10)
	for _, mode := range []struct {
		name  string
		popts core.ParallelOptions
	}{
		{"static-lpt", core.ParallelOptions{NoSteal: true}},
		{"steal", core.ParallelOptions{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			pool := cluster.NewLocalPoolWith(4, nil)
			b.ResetTimer()
			var stats *core.ParallelStats
			for i := 0; i < b.N; i++ {
				var err error
				if _, stats, err = core.ParallelCompileWith("bench.w2", src, pool, compiler.Options{}, mode.popts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stats.CompileWallTime.Nanoseconds()), "compile_wall_ns")
			if mode.popts.NoSteal {
				return
			}
			b.ReportMetric(float64(stats.Steal.Steals), "steals")
			b.ReportMetric(float64(stats.Steal.BatchSplits), "batch_splits")
			b.ReportMetric(float64(stats.Steal.StealLatency.Nanoseconds()), "steal_latency_ns")
			var idle int64
			for _, d := range stats.Steal.IdleTime {
				idle += d.Nanoseconds()
			}
			b.ReportMetric(float64(idle), "idle_total_ns")
		})
	}
}

// BenchmarkCrossBuildSteal measures the daemon-lifetime shared stealing
// fleet against per-build fleets (warpd -per-build-fleets) on the
// cross-build workload the sharing targets: two tenants submit overlapped
// jobs — one skewed (a straggler section of heavy functions), one mixed
// (one huge function plus many tiny ones) — so each build's straggler
// tail leaves slots idle exactly while the co-tenant has queued units to
// steal. Jobs go through the real wire protocol (admission, tokens,
// per-job stat scoping) and the pool is uncached, so every job is a
// genuine cold build. Reported per mode: p95 job latency, job throughput,
// and the fleet's cumulative steal/cross-build-steal counters (zero under
// per-build fleets, where no foreign queue is reachable). On a single-CPU
// host both modes sit at the core-bound parity ceiling documented in
// BENCH_xsteal.json; the cross-build steal counts and the per-slot idle
// decomposition are the signal that the machinery fires.
func BenchmarkCrossBuildSteal(b *testing.B) {
	srcA := wgen.SkewedProgram(2, 4)
	srcB := wgen.MixedProgram(24)
	for _, mode := range []struct {
		name     string
		perBuild bool
	}{
		{"shared-fleet", false},
		{"per-build-fleets", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.Setenv(fcache.EnvCacheDir, "") // no ambient disk tier: every job is a cold build
			d, err := service.NewDaemon(service.Config{
				Backend:        cluster.NewLocalPoolWith(4, nil),
				MaxActive:      2,
				PerBuildFleets: mode.perBuild,
			})
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go d.Serve(ln)
			defer func() {
				if err := d.Shutdown(30 * time.Second); err != nil {
					b.Error(err)
				}
				ln.Close()
			}()
			tenants := []struct {
				ident string
				file  string
				src   []byte
			}{
				{"tenant-a", "a.w2", srcA},
				{"tenant-b", "b.w2", srcB},
			}
			clients := make([]*service.Client, len(tenants))
			for i, tn := range tenants {
				cl, err := service.Dial(ln.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				cl.SetIdentity(tn.ident)
				defer cl.Close()
				clients[i] = cl
			}
			var (
				mu  sync.Mutex
				lat []time.Duration
			)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, len(tenants))
				for j, tn := range tenants {
					wg.Add(1)
					go func(j int, cl *service.Client, file string, src []byte) {
						defer wg.Done()
						start := time.Now()
						_, err := cl.Compile(context.Background(), file, src, compiler.Options{}, core.ParallelOptions{})
						errs[j] = err
						mu.Lock()
						lat = append(lat, time.Since(start))
						mu.Unlock()
					}(j, clients[j], tn.file, tn.src)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p95 := lat[(len(lat)*95-1)/100]
			b.ReportMetric(float64(p95.Nanoseconds()), "p95_job_ns")
			b.ReportMetric(float64(len(lat))/b.Elapsed().Seconds(), "jobs_per_sec")
			ds, err := clients[0].Stats(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ds.FleetSteals), "fleet_steals")
			b.ReportMetric(float64(ds.FleetCrossBuildSteals), "cross_build_steals")
		})
	}
}

// Quickstart: compile a small W2 module with the sequential compiler, run
// it on the Warp array simulator, and cross-check the output against the
// reference interpreter.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/warpsim"
)

const src = `
module quickstart (in xs: float[8], out ys: float[8])

section 1 of 1 {
    function smooth(prev: float, cur: float): float {
        return prev * 0.25 + cur * 0.75;
    }
    function cell() {
        var i: int;
        var v: float;
        var last: float = 0.0;
        for i = 0 to 7 {
            receive(X, v);
            last = smooth(last, v);
            send(Y, last);
        }
    }
}
`

func main() {
	// Phase 1-4: parse, check, optimize, schedule, assemble, link.
	res, err := compiler.CompileModule("quickstart.w2", []byte(src), compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d instruction words for %d cell(s)\n",
		res.ModuleName, res.Module.TotalWords(), len(res.Module.Cells))
	for _, fr := range res.Funcs {
		fmt.Printf("  %-8s %3d lines, %d loop(s) seen, %d software-pipelined, %d words\n",
			fr.Name, fr.Lines, fr.GenStats.LoopsSeen, fr.GenStats.LoopsPipelined, fr.GenStats.Words)
	}

	// Execute on the cycle-level array simulator.
	input := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	arr := warpsim.NewArray(res.Module, warpsim.Config{})
	words, st, err := arr.Run(res.Driver.EncodeInput(input))
	if err != nil {
		log.Fatal(err)
	}
	simOut := res.Driver.DecodeOutput(words)

	// Cross-check against the reference interpreter.
	m, info, bag := compiler.Frontend("quickstart.w2", []byte(src))
	if bag.HasErrors() {
		log.Fatal(bag.String())
	}
	var vals []interp.Value
	for _, v := range input {
		vals = append(vals, interp.FloatVal(v))
	}
	refOut, err := interp.RunModule(m, info, vals, interp.Limits{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d cycles; outputs (simulator vs interpreter):\n", st.Cycles)
	for i := range simOut {
		fmt.Printf("  out[%d] = %-10.6g ref %-10.6g\n", i, simOut[i], refOut[i].AsFloat())
	}
}

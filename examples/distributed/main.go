// Distributed example: the paper's host system was a network of
// workstations exchanging messages. This example starts three compile
// workers serving net/rpc on localhost (in-process, but communicating only
// through TCP), compiles the user program through them, and verifies the
// result against the sequential compiler.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/wgen"
)

func main() {
	// Start three "workstations".
	var addrs []string
	for i := 0; i < 3; i++ {
		ln, addr, err := cluster.ServeWorker("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, addr)
		fmt.Printf("worker %d listening on %s\n", i, addr)
	}

	pool, err := cluster.DialPool(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	src := wgen.UserProgram()
	par, stats, err := core.ParallelCompile("mechapp.w2", src, pool, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d functions over %d RPC workers in %v\n",
		len(par.Funcs), pool.Workers(), stats.Elapsed.Round(1000))
	for name, cpu := range stats.FuncCPU {
		fmt.Printf("  %-16s cpu %v\n", name, cpu.Round(1000))
	}

	seq, err := compiler.CompileModule("mechapp.w2", src, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifySameOutput(seq.Module, par.Module); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: distributed compilation matches the sequential compiler bit for bit")
}

// User-program example (§4.3): the mechanical-engineering application —
// three section programs with three functions each. Shows the master's
// structural parse, the load-balancing heuristic grouping functions onto
// 2, 3, 5 and 9 processors, the simulated 1989 speedups, and a real
// parallel compilation of the program.
//
//	go run ./examples/userprogram
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/parser"
	"repro/internal/sched"
	"repro/internal/simhost"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/wgen"
)

func main() {
	src := wgen.UserProgram()

	// The master's structural parse: sections, functions, size metrics.
	var bag source.DiagBag
	outline := parser.ParseOutline("mechapp.w2", src, &bag)
	if outline == nil {
		log.Fatal(bag.String())
	}
	fmt.Printf("module %s: %d sections, %d functions\n", outline.Module, len(outline.Sections), outline.NumFunctions())
	for _, fo := range outline.AllFunctions() {
		fmt.Printf("  section %d  %-10s %4d lines  loop depth %d  est. cost %6.0f\n",
			fo.Section, fo.Name, fo.Lines, fo.LoopDepth,
			sched.EstimateCost(sched.Task{Lines: fo.Lines, LoopDepth: fo.LoopDepth}))
	}

	// The §4.3 heuristic: group functions over few processors.
	tasks := core.Tasks(outline)
	for _, p := range []int{2, 3, 5, 9} {
		groups := sched.Group(tasks, p)
		fmt.Printf("\n%d processors (predicted makespan %.0f):\n", p, sched.Makespan(groups))
		for i, g := range groups {
			if len(g) == 0 {
				continue
			}
			fmt.Printf("  station %d:", i)
			for _, t := range g {
				fmt.Printf(" %s(%d)", t.Name, t.Lines)
			}
			fmt.Println()
		}
	}

	// Simulated 1989 timings (the Figure 11 measurement).
	pm := costmodel.Default1989()
	seq := simhost.SimulateSequential(outline, pm)
	fmt.Printf("\n1989 sequential compile: %.0f s (%.0f min), of which %.0f s paging\n",
		seq.Elapsed, seq.Elapsed/60, seq.SwapSec)
	for _, p := range []int{2, 3, 5, 9} {
		par := simhost.SimulateParallel(outline, pm, p, simhost.Grouped)
		fmt.Printf("1989 parallel on %d processors: %.0f s -> speedup %.2f\n",
			p, par.Elapsed, stats.Speedup(seq.Elapsed, par.Elapsed))
	}

	// And compile it for real, in parallel, verifying the result.
	pool := cluster.NewLocalPool(4)
	par, pstats, err := core.ParallelCompile("mechapp.w2", src, pool, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	seqReal, err := compiler.CompileModule("mechapp.w2", src, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifySameOutput(seqReal.Module, par.Module); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal parallel compile: %d words across %d cells in %v (output verified)\n",
		par.Module.TotalWords(), len(par.Module.Cells), pstats.Elapsed.Round(1000))
}

// Monte Carlo example: the paper derived its benchmark functions from "one
// of our largest application programs, a Monte Carlo style simulation".
// This example generates such a program (four f_medium kernels), compiles
// it both sequentially and with the parallel compiler, verifies the outputs
// are identical, runs the module, and reports what the calibrated 1989 host
// simulation predicts for both compilations.
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/parser"
	"repro/internal/simhost"
	"repro/internal/source"
	"repro/internal/warpsim"
	"repro/internal/wgen"
)

func main() {
	src := wgen.SyntheticProgram(wgen.Medium, 4)
	fmt.Printf("generated Monte-Carlo style program: %d bytes\n", len(src))

	// Sequential compilation.
	seq, err := compiler.CompileModule("mc.w2", src, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential compile: %d functions, %d words, frontend %v, middle %v\n",
		len(seq.Funcs), seq.Module.TotalWords(),
		seq.FrontendTime.Round(1000), seq.MiddleTime.Round(1000))

	// Parallel compilation on 4 in-process workers.
	pool := cluster.NewLocalPool(4)
	par, pstats, err := core.ParallelCompile("mc.w2", src, pool, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel compile:   %d workers, elapsed %v, total function CPU %v\n",
		pstats.Workers, pstats.Elapsed.Round(1000), pstats.TotalFuncCPU().Round(1000))

	if err := core.VerifySameOutput(seq.Module, par.Module); err != nil {
		log.Fatalf("parallel output differs: %v", err)
	}
	fmt.Println("verified: parallel and sequential compilers produce identical download modules")

	// Run the compiled module.
	arr := warpsim.NewArray(par.Module, warpsim.Config{MaxCycles: 50_000_000})
	words, st, err := arr.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	out := par.Driver.DecodeOutput(words)
	fmt.Printf("array simulation: %d cycles, result %v\n", st.Cycles, out)

	// What would this compilation have cost in 1989?
	var bag source.DiagBag
	outline := parser.ParseOutline("mc.w2", src, &bag)
	if outline == nil {
		log.Fatal(bag.String())
	}
	pm := costmodel.Default1989()
	st1989seq := simhost.SimulateSequential(outline, pm)
	st1989par := simhost.SimulateParallel(outline, pm, experimentsWorkstations, simhost.FCFS)
	fmt.Printf("on the 1989 cluster: sequential %.0f s, parallel %.0f s -> speedup %.2f\n",
		st1989seq.Elapsed, st1989par.Elapsed, st1989seq.Elapsed/st1989par.Elapsed)
}

// experimentsWorkstations mirrors experiments.Workstations without
// importing the experiments package into an example.
const experimentsWorkstations = 15

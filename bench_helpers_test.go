package repro

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/parser"
	"repro/internal/simhost"
	"repro/internal/source"
)

// mustOutline parses a generated workload for the scheduling ablations.
func mustOutline(b *testing.B, src []byte) *parser.Outline {
	b.Helper()
	var bag source.DiagBag
	o := parser.ParseOutline("bench.w2", src, &bag)
	if o == nil || bag.HasErrors() {
		b.Fatal(bag.String())
	}
	return o
}

func experimentsSimulateFCFS(o *parser.Outline, p int) float64 {
	return simhost.SimulateParallel(o, costmodel.Default1989(), p, simhost.FCFS).Elapsed
}

func experimentsSimulateGrouped(o *parser.Outline, p int) float64 {
	return simhost.SimulateParallel(o, costmodel.Default1989(), p, simhost.Grouped).Elapsed
}

// Command warpworker is a compile worker ("workstation daemon"): it serves
// function-compilation requests from warpcc -mode rpc over net/rpc, one at
// a time, like the single-CPU SUN workstations of the measured system.
//
// Usage:
//
//	warpworker [-addr host:port]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	flag.Parse()

	ln, bound, err := cluster.ServeWorker(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "warpworker:", err)
		os.Exit(1)
	}
	defer ln.Close()
	fmt.Printf("warpworker: serving compile requests on %s\n", bound)

	// Serve until killed.
	select {}
}

// Command warpworker is a compile worker ("workstation daemon"): it serves
// function-compilation requests from warpcc -mode rpc over net/rpc, one at
// a time, like the single-CPU SUN workstations of the measured system. It
// keeps a per-process content-addressed artifact cache so repeated requests
// against the same module source skip parsing, checking, and lowering, and
// masters can send a 32-byte hash instead of the whole source.
//
// On SIGINT/SIGTERM the worker shuts down gracefully: it stops accepting
// connections, refuses new compiles (clients fail over to other workers),
// drains in-flight compiles for up to the grace period, then exits 0 — so
// an operator restart never surfaces as a raw connection reset mid-reply.
//
// Usage:
//
//	warpworker [-addr host:port] [-cache-mb N] [-cache-dir DIR] [-grace D]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	cacheMB := flag.Int64("cache-mb", 0, "artifact cache budget in MiB (0 = default, negative = disable caching)")
	cacheDir := flag.String("cache-dir", "", "persistent object cache directory (survives restarts; overrides WARP_CACHE_DIR)")
	grace := flag.Duration("grace", 10*time.Second, "drain period for in-flight compiles on SIGINT/SIGTERM")
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	srv, err := cluster.NewWorkerServerDir(*addr, cacheBytes, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "warpworker:", err)
		os.Exit(1)
	}
	fmt.Printf("warpworker: serving compile requests on %s\n", srv.Addr())

	// Serve until asked to stop, then drain.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("warpworker: %v: draining in-flight compiles (grace %v)\n", s, *grace)
	if err := srv.Shutdown(*grace); err != nil {
		fmt.Fprintln(os.Stderr, "warpworker: shutdown:", err)
	}
	fmt.Println("warpworker: stopped")
}

// Command warpworker is a compile worker ("workstation daemon"): it serves
// function-compilation requests from warpcc -mode rpc over net/rpc, one at
// a time, like the single-CPU SUN workstations of the measured system. It
// keeps a per-process content-addressed artifact cache so repeated requests
// against the same module source skip parsing, checking, and lowering, and
// masters can send a 32-byte hash instead of the whole source.
//
// Usage:
//
//	warpworker [-addr host:port] [-cache-mb N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	cacheMB := flag.Int64("cache-mb", 0, "artifact cache budget in MiB (0 = default, negative = disable caching)")
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	ln, bound, err := cluster.ServeWorkerWith(*addr, cacheBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "warpworker:", err)
		os.Exit(1)
	}
	defer ln.Close()
	fmt.Printf("warpworker: serving compile requests on %s\n", bound)

	// Serve until killed.
	select {}
}

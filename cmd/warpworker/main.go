// Command warpworker is a compile worker ("workstation daemon"): it serves
// function-compilation requests from warpcc -mode rpc over net/rpc. At most
// -jobs compiles run concurrently (default: the machine's CPU count); the
// rest queue FCFS, so a burst of batch RPCs cannot oversubscribe the host —
// net/rpc otherwise spawns an unbounded goroutine per request. -jobs 1
// reproduces the single-CPU SUN workstations of the measured system. It
// keeps a per-process content-addressed artifact cache so repeated requests
// against the same module source skip parsing, checking, and lowering, and
// masters can send a 32-byte hash instead of the whole source.
//
// Every cached worker also serves the peer-cache protocol on its listener
// ("who has hash H?" / "fetch H" — internal/peercache), so its address
// doubles as a peer address. With -peers naming sibling workers or daemons,
// the worker fetches finished objects from the fleet before recompiling:
// a cold restart syncs 32-byte keys and pulls artifacts instead of
// recompiling the world.
//
// On SIGINT/SIGTERM the worker shuts down gracefully: it stops accepting
// connections, refuses new compiles (clients fail over to other workers),
// drains in-flight compiles for up to the grace period, then exits 0 — so
// an operator restart never surfaces as a raw connection reset mid-reply.
//
// Usage:
//
//	warpworker [-addr host:port] [-jobs N] [-cache-mb N] [-cache-dir DIR] [-peers a,b] [-grace D]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent compiles; excess requests queue (1 = the paper's single-CPU workstation)")
	cacheMB := flag.Int64("cache-mb", 0, "artifact cache budget in MiB (0 = default, negative = disable caching)")
	cacheDir := flag.String("cache-dir", "", "persistent object cache directory (survives restarts; overrides WARP_CACHE_DIR)")
	peers := flag.String("peers", "", "comma-separated peer addresses (other workers/daemons) to fetch finished objects from before recompiling")
	grace := flag.Duration("grace", 10*time.Second, "drain period for in-flight compiles on SIGINT/SIGTERM")
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	var peerAddrs []string
	if *peers != "" {
		peerAddrs = strings.Split(*peers, ",")
	}
	srv, err := cluster.NewWorkerServerPeers(*addr, cacheBytes, *cacheDir, *jobs, peerAddrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "warpworker:", err)
		os.Exit(1)
	}
	if len(peerAddrs) > 0 {
		fmt.Printf("warpworker: serving compile requests on %s (%d concurrent jobs, %d peers)\n", srv.Addr(), *jobs, len(peerAddrs))
	} else {
		fmt.Printf("warpworker: serving compile requests on %s (%d concurrent jobs)\n", srv.Addr(), *jobs)
	}

	// Serve until asked to stop, then drain.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("warpworker: %v: draining in-flight compiles (grace %v)\n", s, *grace)
	if err := srv.Shutdown(*grace); err != nil {
		fmt.Fprintln(os.Stderr, "warpworker: shutdown:", err)
	}
	fmt.Println("warpworker: stopped")
}

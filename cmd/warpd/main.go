// Command warpd is the multi-tenant compile daemon: a long-running
// process serving concurrent compile jobs from many warpcc clients over
// one shared worker pool and one shared artifact cache. Jobs pass
// admission control (bounded queue, fair-share round-robin per client,
// overload shedding with a suggested backoff), hold a jobserver-style
// parallelism token while running, and are cancelled the moment their
// client disconnects. Identical concurrent submissions coalesce and
// compile once.
//
// Concurrent jobs dispatch through one daemon-lifetime work-stealing
// fleet: a slot left idle by one build's straggler tail steals another
// build's queued units, with victims chosen by per-tenant service deficit
// so a huge build cannot starve a small one (-per-build-fleets restores
// the old one-fleet-per-job baseline).
//
// Daemons federate through the peer-cache protocol (internal/peercache):
// -peer-listen serves this daemon's artifact cache to the fleet ("who has
// hash H?" / "fetch H"), and -peers names sibling daemons or workers to
// fetch finished objects from before recompiling — a second daemon coming
// up next to a warm one syncs artifacts instead of recompiling the world.
// Per-job peer counters (hits, prefetched, errors) appear in job snapshots
// alongside the other cache stats.
//
// On SIGINT/SIGTERM the daemon drains: it finishes accepted jobs,
// refuses new ones with warp-err:draining, verifies no parallelism token
// leaked, and exits 0. Restarted over the same -cache-dir it serves
// repeat jobs from the warm object tier without recompiling anything.
//
// Usage:
//
//	warpd -listen unix:/tmp/warpd.sock [-j N | -workers host:port,...]
//	      [-cache-dir DIR] [-peer-listen host:port] [-peers a,b]
//	      [-max-active N] [-max-queued N] [-tokens N]
//	      [-job-timeout D] [-grace D]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/peercache"
	"repro/internal/service"
)

func main() {
	var (
		listen     = flag.String("listen", "unix:/tmp/warpd.sock", "listen address: unix:/path or TCP host:port")
		jobs       = flag.Int("j", runtime.NumCPU(), "in-process worker count (ignored with -workers)")
		workers    = flag.String("workers", "", "comma-separated remote worker addresses (rpc backend)")
		cacheDir   = flag.String("cache-dir", "", "persistent shared object cache directory (overrides WARP_CACHE_DIR)")
		peerListen = flag.String("peer-listen", "", "serve the peer-cache protocol on this address (host:port; empty = not served)")
		peersCSV   = flag.String("peers", "", "comma-separated peer-cache addresses (sibling daemons or workers) to fetch finished objects from")
		maxActive  = flag.Int("max-active", 0, "max concurrently running jobs (0 = worker count)")
		maxQueued  = flag.Int("max-queued", -1, "max jobs waiting at admission before shedding (-1 = 4x max-active)")
		tokens     = flag.Int("tokens", 0, "parallelism token bucket capacity (0 = max-active)")
		jobTO      = flag.Duration("job-timeout", 0, "per-job deadline measured from admission (0 = none)")
		grace      = flag.Duration("grace", 30*time.Second, "drain period for accepted jobs on SIGINT/SIGTERM")
		perBuild   = flag.Bool("per-build-fleets", false, "give every job its own work-stealing fleet instead of the shared daemon-lifetime one (the pre-cross-build-stealing baseline)")

		callTimeout = flag.Duration("call-timeout", 30*time.Second, "per-RPC deadline for remote workers (0 disables)")
		maxRetries  = flag.Int("max-retries", 3, "max failover attempts per request for remote workers")
		dialRetry   = flag.Duration("dial-retry", 500*time.Millisecond, "readmission probe period for quarantined workers")
	)
	flag.Parse()

	var backend core.Backend
	var cache *fcache.Cache
	if *workers != "" {
		popts := cluster.PoolOptions{
			CallTimeout: *callTimeout,
			MaxRetries:  *maxRetries,
			DialRetry:   *dialRetry,
			CacheDir:    *cacheDir,
		}
		pool, err := cluster.DialPoolWith(strings.Split(*workers, ","), popts)
		if err != nil {
			fatal(err)
		}
		defer pool.Close()
		if pool.Healthy() < pool.Workers() {
			fmt.Fprintf(os.Stderr, "warpd: degraded start: %d/%d workers reachable\n",
				pool.Healthy(), pool.Workers())
		}
		backend = pool
		cache = pool.Cache()
	} else {
		pool := cluster.NewLocalPool(*jobs)
		if *cacheDir != "" {
			if err := pool.Cache().AttachDisk(*cacheDir, 0); err != nil {
				fatal(fmt.Errorf("opening -cache-dir %s: %w", *cacheDir, err))
			}
		}
		backend = pool
		cache = pool.Cache()
	}

	// Peer federation: serve this daemon's cache to the fleet and/or fetch
	// from siblings. The served address doubles as our gossip identity.
	var peerSelf string
	if *peerListen != "" {
		psrv, addr, err := peercache.Serve(*peerListen, peercache.NewService(cache, "", nil))
		if err != nil {
			fatal(fmt.Errorf("peer-listen %s: %w", *peerListen, err))
		}
		defer psrv.Close()
		peerSelf = addr
		fmt.Printf("warpd: serving peer cache on %s\n", addr)
	}
	if *peersCSV != "" {
		addrs := strings.Split(*peersCSV, ",")
		pc := peercache.New(peercache.ClientOptions{Self: peerSelf})
		n := pc.Connect(addrs...)
		defer pc.Close()
		cache.AttachPeers(pc)
		fmt.Printf("warpd: peer cache: %d/%d peers connected\n", n, len(addrs))
	}

	d, err := service.NewDaemon(service.Config{
		Backend:        backend,
		MaxActive:      *maxActive,
		MaxQueued:      *maxQueued,
		Tokens:         *tokens,
		JobTimeout:     *jobTO,
		PerBuildFleets: *perBuild,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	network, target := "tcp", *listen
	if rest, ok := strings.CutPrefix(*listen, "unix:"); ok {
		network, target = "unix", rest
		// A stale socket from a crashed daemon blocks rebinding; the warm
		// cache directory, not the socket, carries the state that matters.
		os.Remove(target)
	} else if strings.Contains(*listen, "/") {
		network, target = "unix", *listen
		os.Remove(target)
	}
	l, err := net.Listen(network, target)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("warpd: serving compile jobs on %s (%d workers)\n", l.Addr(), backend.Workers())

	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("warpd: %v: draining accepted jobs (grace %v)\n", s, *grace)
		if err := d.Shutdown(*grace); err != nil {
			fmt.Fprintln(os.Stderr, "warpd: shutdown:", err)
			os.Exit(1)
		}
		if network == "unix" {
			os.Remove(target)
		}
		fmt.Println("warpd: stopped")
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "warpd:", err)
	os.Exit(1)
}

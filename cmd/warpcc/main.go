// Command warpcc is the W2 compiler driver. It compiles a module either
// sequentially or in parallel (goroutine workers or remote net/rpc
// workers), and can print listings, run the result on the array simulator,
// or verify that parallel and sequential compilation produce identical
// download modules.
//
// Usage:
//
//	warpcc [flags] file.w2
//
//	-mode seq|par|rpc     compilation mode (default seq)
//	-daemon ADDR          compile via a running warpd daemon instead (unix:/path or host:port)
//	-daemon-retries N     bounded resubmits when the daemon sheds with
//	                      warp-err:overloaded, waiting out its RetryAfter hint
//	-j N                  worker count for -mode par (default 4)
//	-workers host:port,.. worker addresses for -mode rpc
//	-sched fcfs|lpt       dispatch ordering (default lpt: cost-model + batching)
//	-no-steal             static per-section dispatch instead of work stealing
//	-batch-threshold C    estimated-cost cutoff for batching (0 disables)
//	-barrier              strictly phased master (baseline) instead of the pipeline
//	-fe-sequential        sequential frontend instead of the parallel one
//	-fe-workers N         parallel-frontend worker bound (0 = GOMAXPROCS)
//	-peers a,b            peer-cache addresses to fetch finished objects from
//	-call-timeout D       per-RPC deadline for -mode rpc (0 disables)
//	-max-retries N        failover attempts per request for -mode rpc
//	-dial-retry D         readmission probe period for quarantined workers
//	-no-fallback          fail instead of compiling locally when no worker is up
//	-S                    print assembly listings
//	-run                  execute the module on the array simulator
//	-in v1,v2,...         input stream values for -run
//	-verify               compile both ways and compare the modules
//	-no-pipeline          disable software pipelining
//	-no-sched             disable instruction scheduling
//	-stats                print per-function compile statistics
//	-stats-json           emit the parallel stats as one JSON object on stderr
//
// In daemon mode the objects stay in the daemon, so -S prints no
// listings; everything else (-run, -verify, -stats) works unchanged.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/peercache"
	"repro/internal/service"
	"repro/internal/warpsim"
)

func main() {
	var (
		mode          = flag.String("mode", "seq", "compilation mode: seq, par, or rpc")
		jobs          = flag.Int("j", 4, "worker count for -mode par")
		workers       = flag.String("workers", "", "comma-separated worker addresses for -mode rpc")
		listing       = flag.Bool("S", false, "print assembly listings")
		run           = flag.Bool("run", false, "run the compiled module on the array simulator")
		inputCSV      = flag.String("in", "", "comma-separated input stream values for -run")
		verify        = flag.Bool("verify", false, "verify parallel output against sequential")
		noPipeline    = flag.Bool("no-pipeline", false, "disable software pipelining")
		noSched       = flag.Bool("no-sched", false, "disable instruction scheduling")
		noCache       = flag.Bool("no-cache", false, "disable the artifact cache in -mode par")
		cacheDir      = flag.String("cache-dir", "", "disk-backed object cache directory for par/rpc modes (persists across runs; overrides WARP_CACHE_DIR)")
		peersCSV      = flag.String("peers", "", "comma-separated peer-cache addresses (workers or daemons) to batch-prefetch finished objects from before dispatch")
		showStats     = flag.Bool("stats", false, "print per-function statistics")
		statsJSON     = flag.Bool("stats-json", false, "emit the parallel-compilation stats as one JSON object on stderr (durations in nanoseconds; rank-corr 0 when not computed)")
		daemonAddr    = flag.String("daemon", "", "compile via a running warpd daemon at this address (unix:/path or host:port) instead of -mode")
		clientID      = flag.String("client", "", "fair-share identity sent to the daemon (default: the connection address)")
		daemonRetries = flag.Int("daemon-retries", 3, "max resubmits after warp-err:overloaded, honoring the daemon's RetryAfter hint (0 surfaces the shed immediately)")

		schedName      = flag.String("sched", "lpt", "dispatch ordering for par/rpc modes: fcfs (the paper's measured system) or lpt (cost-model ordering + batching)")
		noSteal        = flag.Bool("no-steal", false, "disable the global work-stealing scheduler (static per-section dispatch, the measured baseline)")
		batchThreshold = flag.Float64("batch-threshold", core.DefaultBatchThreshold, "estimated-cost cutoff below which functions are batched (0 disables batching)")
		barrier        = flag.Bool("barrier", false, "use the paper's strictly phased master (frontend, fork, barrier, link) instead of the overlapped pipeline")
		feSequential   = flag.Bool("fe-sequential", false, "use the sequential frontend for the master's phase-1 leg instead of the span-sliced parallel frontend")
		feWorkers      = flag.Int("fe-workers", 0, "worker bound for the parallel frontend (0 = GOMAXPROCS)")

		callTimeout = flag.Duration("call-timeout", 30*time.Second, "per-RPC deadline for -mode rpc (0 disables)")
		maxRetries  = flag.Int("max-retries", 3, "max failover attempts per request for -mode rpc (0 disables)")
		dialRetry   = flag.Duration("dial-retry", 500*time.Millisecond, "probe period for readmitting quarantined workers (0 disables)")
		noFallback  = flag.Bool("no-fallback", false, "fail instead of compiling in-process when no worker is available")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: warpcc [flags] file.w2")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	opts := compiler.Options{Codegen: codegen.Options{
		DisablePipelining: *noPipeline,
		DisableScheduling: *noSched,
	}}

	copts := core.ParallelOptions{
		BatchThreshold:     *batchThreshold,
		Barrier:            *barrier,
		FrontendSequential: *feSequential,
		FrontendWorkers:    *feWorkers,
		NoSteal:            *noSteal,
	}
	switch *schedName {
	case "fcfs":
		copts.Sched = core.SchedFCFS
	case "lpt":
		copts.Sched = core.SchedLPT
	default:
		fatal(fmt.Errorf("unknown -sched %q (want fcfs or lpt)", *schedName))
	}
	if *batchThreshold == 0 {
		copts.BatchThreshold = -1 // the flag's 0 means "no batching"
	}

	var peerAddrs []string
	if *peersCSV != "" {
		peerAddrs = strings.Split(*peersCSV, ",")
	}

	var res *compiler.Result
	var pstats *core.ParallelStats
	switch {
	case *daemonAddr != "":
		res, pstats, err = daemonCompile(*daemonAddr, *clientID, file, src, opts, copts, *daemonRetries)
	case *mode == "seq":
		res, err = compiler.CompileModule(file, src, opts)
	case *mode == "par":
		var pool *cluster.LocalPool
		if *noCache {
			if *cacheDir != "" {
				fatal(fmt.Errorf("-no-cache and -cache-dir are mutually exclusive"))
			}
			pool = cluster.NewLocalPoolWith(*jobs, nil)
		} else {
			pool = cluster.NewLocalPool(*jobs)
			if *cacheDir != "" {
				if derr := pool.Cache().AttachDisk(*cacheDir, 0); derr != nil {
					fatal(fmt.Errorf("opening -cache-dir %s: %w", *cacheDir, derr))
				}
			}
			if len(peerAddrs) > 0 {
				pc := peercache.New(peercache.ClientOptions{})
				pc.Connect(peerAddrs...)
				defer pc.Close()
				pool.Cache().AttachPeers(pc)
			}
		}
		res, pstats, err = core.ParallelCompileWith(file, src, pool, opts, copts)
	case *mode == "rpc":
		if *workers == "" {
			fatal(fmt.Errorf("-mode rpc requires -workers"))
		}
		popts := cluster.PoolOptions{
			CallTimeout:     *callTimeout,
			MaxRetries:      *maxRetries,
			DialRetry:       *dialRetry,
			DisableFallback: *noFallback,
			CacheDir:        *cacheDir,
			Peers:           peerAddrs,
		}
		if *callTimeout == 0 {
			popts.CallTimeout = -1
		}
		if *maxRetries == 0 {
			popts.MaxRetries = -1
		}
		if *dialRetry == 0 {
			popts.DialRetry = -1
		}
		pool, derr := cluster.DialPoolWith(strings.Split(*workers, ","), popts)
		if derr != nil {
			fatal(derr)
		}
		defer pool.Close()
		if pool.Healthy() < pool.Workers() {
			fmt.Fprintf(os.Stderr, "warpcc: degraded start: %d/%d workers reachable\n",
				pool.Healthy(), pool.Workers())
		}
		res, pstats, err = core.ParallelCompileWith(file, src, pool, opts, copts)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if err != nil {
		fatal(err)
	}
	if pstats != nil {
		for _, w := range pstats.Faults.Warnings {
			fmt.Fprintln(os.Stderr, "warpcc: degraded:", w)
		}
		if *showStats {
			printParallelStats(pstats)
		}
		if *statsJSON {
			printParallelStatsJSON(pstats)
		}
	}

	// The combined diagnostic output (the paper's master prints what the
	// section masters merged).
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, w)
	}

	fmt.Printf("compiled module %s: %d section(s), %d function(s), %d instruction words\n",
		res.ModuleName, len(res.Module.Cells), len(res.Funcs), res.Module.TotalWords())

	if *verify {
		seq, serr := compiler.CompileModule(file, src, opts)
		if serr != nil {
			fatal(serr)
		}
		if verr := core.VerifySameOutput(seq.Module, res.Module); verr != nil {
			fatal(fmt.Errorf("verification FAILED: %w", verr))
		}
		fmt.Println("verification OK: output identical to the sequential compiler")
	}

	if *showStats {
		for _, fr := range res.Funcs {
			fmt.Printf("  %-20s section %d  %4d lines", fr.Name, fr.Section, fr.Lines)
			if fr.CPUTime > 0 {
				fmt.Printf("  cpu %8v  loops %d/%d pipelined  %d spills",
					fr.CPUTime.Round(1000), fr.GenStats.LoopsPipelined,
					fr.GenStats.LoopsSeen, fr.GenStats.Spills)
			}
			fmt.Println()
		}
	}

	if *listing {
		for _, fr := range res.Funcs {
			if fr.Object != nil {
				fmt.Println(fr.Object.Listing())
			}
		}
	}

	if res.Driver != nil && *showStats {
		fmt.Println(res.Driver.Source())
	}

	if *run {
		var input []float64
		if *inputCSV != "" {
			for _, f := range strings.Split(*inputCSV, ",") {
				v, perr := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if perr != nil {
					fatal(perr)
				}
				input = append(input, v)
			}
		}
		arr := warpsim.NewArray(res.Module, warpsim.Config{})
		out, st, rerr := arr.Run(res.Driver.EncodeInput(input))
		if rerr != nil {
			fatal(rerr)
		}
		vals := res.Driver.DecodeOutput(out)
		fmt.Printf("simulation: %d cycles, %d output value(s)\n", st.Cycles, len(vals))
		for i, v := range vals {
			fmt.Printf("  out[%d] = %g\n", i, v)
		}
		for i, cs := range st.Cells {
			fmt.Printf("  cell %d: %.1f%% utilization (%d executed, %d stalled)\n",
				i, 100*cs.Utilization(st.Cycles+1), cs.Executed, cs.Stalled)
		}
	}
}

// daemonCompile submits the job to a running warpd and adapts its reply
// to the local result shape (function objects stay in the daemon, so
// FuncResult.Object is nil and -S prints nothing).
//
// An overloaded daemon sheds with warp-err:overloaded and a RetryAfter
// hint (its smoothed job service time scaled by queue depth). Rather than
// surfacing the shed, the client waits the hint out and resubmits, up to
// retries times with the hint as the base of an exponential backoff — an
// edit-loop client rides out a burst instead of failing the build.
func daemonCompile(addr, clientID, file string, src []byte, opts compiler.Options, copts core.ParallelOptions, retries int) (*compiler.Result, *core.ParallelStats, error) {
	cl, err := service.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	defer cl.Close()
	if clientID != "" {
		cl.SetIdentity(clientID)
	}
	var resp *service.Response
	for attempt := 0; ; attempt++ {
		resp, err = cl.Compile(context.Background(), file, src, opts, copts)
		if err == nil {
			break
		}
		var re *service.RemoteError
		if !errors.As(err, &re) {
			return nil, nil, err
		}
		if cluster.CodeOf(re) == cluster.CodeOverloaded && attempt < retries {
			delay := re.RetryAfter
			if delay <= 0 {
				delay = 100 * time.Millisecond
			}
			for i := 0; i < attempt; i++ {
				delay *= 2
			}
			if delay > 5*time.Second {
				delay = 5 * time.Second
			}
			fmt.Fprintf(os.Stderr, "warpcc: daemon overloaded, retrying in %v (%d/%d)\n",
				delay.Round(time.Millisecond), attempt+1, retries)
			time.Sleep(delay)
			continue
		}
		if cluster.CodeOf(re).Retryable() && re.RetryAfter > 0 {
			return nil, nil, fmt.Errorf("%w (daemon suggests retrying in %v)", re, re.RetryAfter)
		}
		return nil, nil, err
	}
	res := &compiler.Result{
		ModuleName: resp.ModuleName,
		Module:     resp.Module,
		Driver:     resp.Driver,
		Warnings:   resp.Warnings,
	}
	for _, fs := range resp.Funcs {
		res.Funcs = append(res.Funcs, &compiler.FuncResult{
			Name: fs.Name, Section: fs.Section, Lines: fs.Lines, CPUTime: fs.CPUTime,
		})
	}
	if resp.Coalesced {
		fmt.Fprintln(os.Stderr, "warpcc: job coalesced with an identical in-flight compile")
	}
	return res, resp.Stats, nil
}

// printParallelStatsJSON emits the stats as one JSON object on stderr for
// machine consumption (CI dashboards, build telemetry). Durations are
// nanoseconds; an uncomputed rank correlation (NaN) is reported as 0,
// which JSON cannot carry.
func printParallelStatsJSON(s *core.ParallelStats) {
	js := *s
	if math.IsNaN(js.Dispatch.RankCorr) {
		js.Dispatch.RankCorr = 0
	}
	if math.IsNaN(js.Steal.FittedRankCorr) {
		js.Steal.FittedRankCorr = 0
	}
	if math.IsNaN(js.Steal.StaticRankCorr) {
		js.Steal.StaticRankCorr = 0
	}
	b, err := json.Marshal(&js)
	if err != nil {
		fatal(fmt.Errorf("encoding -stats-json: %w", err))
	}
	fmt.Fprintln(os.Stderr, string(b))
}

// printParallelStats renders the timing breakdown, scheduling decisions,
// and backend counters of one parallel compilation.
func printParallelStats(s *core.ParallelStats) {
	fmt.Printf("parallel: %d workers, elapsed %v, setup %v, frontend %v\n",
		s.Workers, s.Elapsed.Round(1000), s.SetupTime.Round(1000), s.FrontendTime.Round(1000))
	fmt.Printf("timing: dispatch %v, compile-wall %v, tail %v\n",
		s.DispatchTime.Round(1000), s.CompileWallTime.Round(1000), s.BackendTail.Round(1000))
	if p := s.Pipeline; p.CriticalPath > 0 {
		fmt.Printf("pipeline: frontend-overlap %v, link %v (%v overlapped), driver %v, critical-path %v\n",
			p.FrontendOverlap.Round(1000), p.LinkTime.Round(1000), p.LinkOverlap.Round(1000),
			p.DriverTime.Round(1000), p.CriticalPath.Round(1000))
	}
	if p := s.Pipeline; p.FrontendWorkers > 0 {
		fmt.Printf("pipeline: frontend-parse-wall %v, frontend-check-wall %v, frontend-workers %d\n",
			p.FrontendParseWall.Round(1000), p.FrontendCheckWall.Round(1000), p.FrontendWorkers)
	}
	d := s.Dispatch
	rankCorr := "" // meaningless below 3 samples (NaN): omitted entirely
	if !math.IsNaN(d.RankCorr) {
		rankCorr = fmt.Sprintf(" rank-corr=%.2f", d.RankCorr)
	}
	fmt.Printf("schedule: policy=%s threshold=%.0f units=%d batches=%d batched-funcs=%d%s\n",
		d.Policy, d.BatchThreshold, d.Units, d.Batches, d.BatchedFuncs, rankCorr)
	if st := s.Steal; st.Enabled {
		fit := "static"
		if st.ModelFitted {
			fit = fmt.Sprintf("fitted(%d samples)", st.SampleCount)
		}
		corr := "" // meaningless below 3 measured functions (NaN): omitted
		if !math.IsNaN(st.FittedRankCorr) && !math.IsNaN(st.StaticRankCorr) {
			corr = fmt.Sprintf(" rank-corr fitted=%.2f static=%.2f", st.FittedRankCorr, st.StaticRankCorr)
		}
		var idle time.Duration
		for _, d := range st.IdleTime {
			idle += d
		}
		fleet := "private"
		if st.Shared {
			fleet = "shared"
		}
		fmt.Printf("steal: steals=%d cross-build=%d batch-splits=%d steal-latency=%v idle-total=%v fleet=%s model=%s%s\n",
			st.Steals, st.CrossBuildSteals, st.BatchSplits, st.StealLatency.Round(1000), idle.Round(1000), fleet, fit, corr)
	}
	fmt.Printf("incremental: unchanged=%d worker-hits=%d recompiled=%d recompile-ratio=%.2f\n",
		d.UnchangedFuncs, d.IncrementalHits, d.RecompiledFuncs, d.RecompileRatio)
	if c := s.Cache; c.PeerHits+c.PeerMisses+c.PeerErrors+c.PeerPrefetched+c.PeerServed > 0 {
		fmt.Printf("peer: hits=%d misses=%d errors=%d filled-bytes=%d prefetched=%d served=%d\n",
			c.PeerHits, c.PeerMisses, c.PeerErrors, c.PeerBytes, c.PeerPrefetched, c.PeerServed)
	}
	fmt.Printf("cache: %s\n", s.Cache)
	if s.Faults.Any() {
		fmt.Printf("faults: %s\n", s.Faults)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "warpcc:", err)
	os.Exit(1)
}

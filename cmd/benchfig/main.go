// Command benchfig regenerates every figure of the paper's evaluation on
// the calibrated host simulation and prints the series. Run without
// arguments it prints all figures; with -fig it prints one.
//
// Usage:
//
//	benchfig             # all figures
//	benchfig -fig 6      # Figure 6 only
//	benchfig -list       # list available figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure selector (e.g. 6, 11, katseff, headline, pmake)")
	list := flag.Bool("list", false, "list available figures")
	flag.Parse()

	pm := costmodel.Default1989()
	figures := experiments.AllFigures(pm)

	if *list {
		for _, t := range figures {
			fmt.Println(t.Title)
		}
		return
	}
	if *fig == "" {
		for _, t := range figures {
			fmt.Println(t.String())
		}
		return
	}
	needle := strings.ToLower(*fig)
	for _, t := range figures {
		title := strings.ToLower(t.Title)
		if strings.Contains(title, "figure "+needle+":") || strings.Contains(title, needle) {
			fmt.Println(t.String())
			return
		}
	}
	fmt.Fprintf(os.Stderr, "benchfig: no figure matches %q (try -list)\n", *fig)
	os.Exit(1)
}

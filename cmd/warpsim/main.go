// Command warpsim compiles a W2 module and executes it on the cycle-level
// Warp array simulator, reporting outputs and utilization. It is the
// "download and run" step of the toolchain.
//
// Usage:
//
//	warpsim [-in v1,v2,...] [-max-cycles N] file.w2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/compiler"
	"repro/internal/warpsim"
)

func main() {
	inputCSV := flag.String("in", "", "comma-separated input stream values")
	maxCycles := flag.Int64("max-cycles", 10_000_000, "simulation cycle budget")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: warpsim [flags] file.w2")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	res, err := compiler.CompileModule(flag.Arg(0), src, compiler.Options{})
	if err != nil {
		fatal(err)
	}

	var input []float64
	if *inputCSV != "" {
		for _, f := range strings.Split(*inputCSV, ",") {
			v, perr := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if perr != nil {
				fatal(perr)
			}
			input = append(input, v)
		}
	}

	arr := warpsim.NewArray(res.Module, warpsim.Config{MaxCycles: *maxCycles})
	out, st, err := arr.Run(res.Driver.EncodeInput(input))
	if err != nil {
		fatal(err)
	}
	vals := res.Driver.DecodeOutput(out)
	fmt.Printf("module %s: %d cell(s), %d cycles\n", res.ModuleName, len(res.Module.Cells), st.Cycles)
	for i, v := range vals {
		fmt.Printf("out[%d] = %g\n", i, v)
	}
	for i, cs := range st.Cells {
		fmt.Printf("cell %d: executed %d, stalled %d, utilization %.1f%%\n",
			i, cs.Executed, cs.Stalled, 100*cs.Utilization(st.Cycles+1))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "warpsim:", err)
	os.Exit(1)
}

// Command wgen emits the synthetic W2 workloads of the paper's evaluation:
// the S_n programs (n functions of one size), multi-section pipelines, and
// the nine-function user program of §4.3.
//
// Usage:
//
//	wgen -kind sn -size medium -n 4        # S_4 of f_medium
//	wgen -kind sections -size small -n 3   # 3-section pipeline
//	wgen -kind user                        # the §4.3 user program
//	wgen -small-funcs 32                   # 32 tiny functions (worst case)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/wgen"
)

func main() {
	kind := flag.String("kind", "sn", "workload kind: sn, sections, or user")
	sizeName := flag.String("size", "medium", "function size: tiny, small, medium, large, huge")
	n := flag.Int("n", 1, "number of functions (sn) or sections (sections)")
	smallFuncs := flag.Int("small-funcs", 0, "emit a module of N tiny functions (the paper's worst case); overrides -kind")
	flag.Parse()

	if *smallFuncs > 0 {
		os.Stdout.Write(wgen.SmallFuncsProgram(*smallFuncs))
		return
	}

	var size wgen.Size
	switch *sizeName {
	case "tiny":
		size = wgen.Tiny
	case "small":
		size = wgen.Small
	case "medium":
		size = wgen.Medium
	case "large":
		size = wgen.Large
	case "huge":
		size = wgen.Huge
	default:
		fmt.Fprintf(os.Stderr, "wgen: unknown size %q\n", *sizeName)
		os.Exit(2)
	}

	var out []byte
	switch *kind {
	case "sn":
		out = wgen.SyntheticProgram(size, *n)
	case "sections":
		out = wgen.MultiSectionProgram(size, *n)
	case "user":
		out = wgen.UserProgram()
	default:
		fmt.Fprintf(os.Stderr, "wgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	os.Stdout.Write(out)
}

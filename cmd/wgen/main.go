// Command wgen emits the synthetic W2 workloads of the paper's evaluation:
// the S_n programs (n functions of one size), multi-section pipelines, and
// the nine-function user program of §4.3.
//
// Usage:
//
//	wgen -kind sn -size medium -n 4        # S_4 of f_medium
//	wgen -kind sections -size small -n 3   # 3-section pipeline
//	wgen -kind user                        # the §4.3 user program
//	wgen -kind mixed -n 12                 # 1 huge + 12 tiny (straggler workload)
//	wgen -kind wide -n 32 -sections 4      # 32 medium functions over 4 sections
//	wgen -kind skewed -n 12 -sections 4    # heavy section 1 + 3 tiny sections
//	wgen -small-funcs 32                   # 32 tiny functions (worst case)
//
// With -edit K, wgen additionally mutates K function bodies of the generated
// program (deterministically under -seed) and writes the original and edited
// sources to -old and -new — an incremental-recompilation test pair. The
// edited function names go to stderr.
//
//	wgen -kind sn -size medium -n 8 -edit 1 -seed 7 -old base.w2 -new edit.w2
//
// Determinism: generator output is a pure function of the flags. The same
// -kind/-size/-n/-sections/-small-funcs always emit byte-identical source —
// there is no hidden randomness, so generated programs are safe to use as
// content-addressed cache keys across machines and runs. -seed affects only
// which functions -edit mutates and how; it never changes the base program.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/wgen"
)

func main() {
	kind := flag.String("kind", "sn", "workload kind: sn, sections, user, mixed (1 huge + n tiny stragglers), wide (n same-sized medium functions over -sections sections), or skewed (n heavy functions in section 1, every other section tiny)")
	sizeName := flag.String("size", "medium", "function size: tiny, small, medium, large, huge")
	n := flag.Int("n", 1, "number of functions (sn, mixed, wide, skewed) or sections (sections)")
	sections := flag.Int("sections", 1, "number of sections for -kind wide and skewed")
	smallFuncs := flag.Int("small-funcs", 0, "emit a module of N tiny functions (the paper's worst case); overrides -kind")
	edit := flag.Int("edit", 0, "mutate K function bodies and write an old/new source pair (-old, -new)")
	seed := flag.Uint64("seed", 1, "mutation seed for -edit; base generator output depends only on -kind/-size/-n/-sections (byte-identical across runs), -seed varies only the -edit mutations")
	oldFile := flag.String("old", "", "file for the unedited source when -edit > 0")
	newFile := flag.String("new", "", "file for the edited source when -edit > 0")
	flag.Parse()

	if *smallFuncs > 0 {
		emit(wgen.SmallFuncsProgram(*smallFuncs), *edit, *seed, *oldFile, *newFile)
		return
	}

	var size wgen.Size
	switch *sizeName {
	case "tiny":
		size = wgen.Tiny
	case "small":
		size = wgen.Small
	case "medium":
		size = wgen.Medium
	case "large":
		size = wgen.Large
	case "huge":
		size = wgen.Huge
	default:
		fmt.Fprintf(os.Stderr, "wgen: unknown size %q\n", *sizeName)
		os.Exit(2)
	}

	var out []byte
	switch *kind {
	case "sn":
		out = wgen.SyntheticProgram(size, *n)
	case "sections":
		out = wgen.MultiSectionProgram(size, *n)
	case "user":
		out = wgen.UserProgram()
	case "mixed":
		out = wgen.MixedProgram(*n)
	case "wide":
		out = wgen.WideProgram(*n, *sections)
	case "skewed":
		out = wgen.SkewedProgram(*sections, *n)
	default:
		fmt.Fprintf(os.Stderr, "wgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	emit(out, *edit, *seed, *oldFile, *newFile)
}

// emit writes the generated program: to stdout normally, or — when k
// edits were requested — the original to oldFile and the mutated version to
// newFile, listing the edited function names on stderr.
func emit(src []byte, k int, seed uint64, oldFile, newFile string) {
	if k <= 0 {
		os.Stdout.Write(src)
		return
	}
	if oldFile == "" || newFile == "" {
		fmt.Fprintln(os.Stderr, "wgen: -edit requires -old and -new")
		os.Exit(2)
	}
	mutated, names, err := wgen.MutateFunctions(src, k, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(oldFile, src, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "wgen:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(newFile, mutated, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "wgen:", err)
		os.Exit(1)
	}
	for _, n := range names {
		fmt.Fprintln(os.Stderr, "wgen: edited", n)
	}
}
